"""Run-length and move-to-front coding.

Building blocks used by the simple "bzip2-flavoured" fallback codec and by
tests; also useful for compressing the flat regions synthetic images
produce at coarse resolution levels.
"""

from __future__ import annotations

__all__ = ["rle_compress", "rle_decompress", "mtf_encode", "mtf_decode"]

_MAX_RUN = 255


def rle_compress(data: bytes) -> bytes:
    """Byte-level run-length encoding: (count, value) pairs."""
    if not data:
        return b""
    out = bytearray()
    run_byte = data[0]
    run_len = 1
    for byte in data[1:]:
        if byte == run_byte and run_len < _MAX_RUN:
            run_len += 1
        else:
            out.append(run_len)
            out.append(run_byte)
            run_byte = byte
            run_len = 1
    out.append(run_len)
    out.append(run_byte)
    return bytes(out)


def rle_decompress(data: bytes) -> bytes:
    """Inverse of :func:`rle_compress`."""
    if len(data) % 2:
        raise ValueError("RLE stream must have even length")
    out = bytearray()
    for i in range(0, len(data), 2):
        count, value = data[i], data[i + 1]
        if count == 0:
            raise ValueError("zero-length run in RLE stream")
        out.extend(bytes([value]) * count)
    return bytes(out)


def mtf_encode(data: bytes) -> bytes:
    """Move-to-front transform (stabilizes byte distributions for RLE)."""
    alphabet = list(range(256))
    out = bytearray()
    for byte in data:
        idx = alphabet.index(byte)
        out.append(idx)
        alphabet.pop(idx)
        alphabet.insert(0, byte)
    return bytes(out)


def mtf_decode(data: bytes) -> bytes:
    """Inverse of :func:`mtf_encode`."""
    alphabet = list(range(256))
    out = bytearray()
    for idx in data:
        byte = alphabet[idx]
        out.append(byte)
        alphabet.pop(idx)
        alphabet.insert(0, byte)
    return bytes(out)
