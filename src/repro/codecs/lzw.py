"""LZW compression (the paper's "compression A").

A from-scratch implementation of Lempel-Ziv-Welch over byte streams with
variable-width codes (9-16 bits).  When the dictionary reaches 2**16
entries both sides simply stop adding entries ("freeze"), which keeps the
encoder and decoder trivially synchronized.  Round-trip tested against
random and structured data, including property-based tests.
"""

from __future__ import annotations

__all__ = ["lzw_compress", "lzw_decompress"]

_MIN_WIDTH = 9
_MAX_WIDTH = 16
_MAX_CODE = 1 << _MAX_WIDTH


class _BitWriter:
    def __init__(self) -> None:
        self._out = bytearray()
        self._acc = 0
        self._nbits = 0

    def write(self, value: int, width: int) -> None:
        self._acc = (self._acc << width) | value
        self._nbits += width
        while self._nbits >= 8:
            self._nbits -= 8
            self._out.append((self._acc >> self._nbits) & 0xFF)
        self._acc &= (1 << self._nbits) - 1

    def getvalue(self) -> bytes:
        if self._nbits:
            return bytes(self._out) + bytes([(self._acc << (8 - self._nbits)) & 0xFF])
        return bytes(self._out)


class _BitReader:
    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0
        self._acc = 0
        self._nbits = 0

    def read(self, width: int) -> int:
        while self._nbits < width:
            if self._pos >= len(self._data):
                raise ValueError("truncated LZW stream")
            self._acc = (self._acc << 8) | self._data[self._pos]
            self._pos += 1
            self._nbits += 8
        self._nbits -= width
        value = (self._acc >> self._nbits) & ((1 << width) - 1)
        self._acc &= (1 << self._nbits) - 1
        return value

    def exhausted(self, width: int) -> bool:
        remaining_bits = (len(self._data) - self._pos) * 8 + self._nbits
        return remaining_bits < width


def lzw_compress(data: bytes) -> bytes:
    """Compress ``data``; empty input yields empty output."""
    if not data:
        return b""
    dictionary = {bytes([i]): i for i in range(256)}
    next_code = 256
    width = _MIN_WIDTH
    writer = _BitWriter()
    current = bytes([data[0]])
    for byte in data[1:]:
        candidate = current + bytes([byte])
        if candidate in dictionary:
            current = candidate
            continue
        writer.write(dictionary[current], width)
        if next_code < _MAX_CODE:
            dictionary[candidate] = next_code
            next_code += 1
            if next_code > (1 << width) and width < _MAX_WIDTH:
                width += 1
        current = bytes([byte])
    writer.write(dictionary[current], width)
    return writer.getvalue()


def lzw_decompress(data: bytes) -> bytes:
    """Inverse of :func:`lzw_compress`."""
    if not data:
        return b""
    reader = _BitReader(data)
    dictionary = {i: bytes([i]) for i in range(256)}
    next_code = 256
    width = _MIN_WIDTH
    code = reader.read(width)
    if code not in dictionary:
        raise ValueError(f"invalid initial LZW code {code}")
    previous = dictionary[code]
    out = bytearray(previous)
    while True:
        # The decoder lags the encoder's dictionary by one entry, so it must
        # widen one code earlier ("early change" in LZW folklore).
        if (
            next_code < _MAX_CODE
            and next_code + 1 > (1 << width)
            and width < _MAX_WIDTH
        ):
            width += 1
        if reader.exhausted(width):
            break
        code = reader.read(width)
        if code in dictionary:
            entry = dictionary[code]
        elif code == next_code:
            # The "KwKwK" special case: code references the entry being built.
            entry = previous + previous[:1]
        else:
            raise ValueError(f"invalid LZW code {code}")
        out.extend(entry)
        if next_code < _MAX_CODE:
            dictionary[next_code] = previous + entry[:1]
            next_code += 1
        previous = entry
    return bytes(out)
