"""2-D Haar wavelet transform and multiresolution image pyramids.

The active visualization server stores images "as wavelet coefficients,
enabling the construction of images at different levels of resolution".
This module implements that substrate for real: a vectorized 2-D Haar
analysis/synthesis pair and a :class:`WaveletPyramid` that reconstructs any
resolution level or sub-region from the coefficient tree.

Conventions
-----------
- Images are 2-D ``float64`` arrays with side lengths divisible by
  ``2**levels``.
- Level 0 is the *coarsest* approximation; level ``L`` is the original
  image, so level ``l`` has side ``side / 2**(L - l)``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

__all__ = [
    "haar2d_forward",
    "haar2d_inverse",
    "haar2d_decompose",
    "haar2d_reconstruct",
    "WaveletPyramid",
]


def haar2d_forward(image: np.ndarray) -> Tuple[np.ndarray, Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """One analysis step: image -> (LL, (LH, HL, HH)).

    Uses the orthonormal Haar filters, so ``haar2d_inverse`` reconstructs
    exactly (up to float rounding).
    """
    a = np.asarray(image, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError(f"expected a 2-D array, got shape {a.shape}")
    if a.shape[0] % 2 or a.shape[1] % 2:
        raise ValueError(f"both sides must be even, got {a.shape}")
    # Rows.
    lo = (a[:, 0::2] + a[:, 1::2]) / np.sqrt(2.0)
    hi = (a[:, 0::2] - a[:, 1::2]) / np.sqrt(2.0)
    # Columns.
    ll = (lo[0::2, :] + lo[1::2, :]) / np.sqrt(2.0)
    lh = (lo[0::2, :] - lo[1::2, :]) / np.sqrt(2.0)
    hl = (hi[0::2, :] + hi[1::2, :]) / np.sqrt(2.0)
    hh = (hi[0::2, :] - hi[1::2, :]) / np.sqrt(2.0)
    return ll, (lh, hl, hh)


def haar2d_inverse(
    ll: np.ndarray, details: Tuple[np.ndarray, np.ndarray, np.ndarray]
) -> np.ndarray:
    """One synthesis step: (LL, (LH, HL, HH)) -> image."""
    lh, hl, hh = details
    h, w = ll.shape
    lo = np.empty((2 * h, w), dtype=np.float64)
    hi = np.empty((2 * h, w), dtype=np.float64)
    lo[0::2, :] = (ll + lh) / np.sqrt(2.0)
    lo[1::2, :] = (ll - lh) / np.sqrt(2.0)
    hi[0::2, :] = (hl + hh) / np.sqrt(2.0)
    hi[1::2, :] = (hl - hh) / np.sqrt(2.0)
    out = np.empty((2 * h, 2 * w), dtype=np.float64)
    out[:, 0::2] = (lo + hi) / np.sqrt(2.0)
    out[:, 1::2] = (lo - hi) / np.sqrt(2.0)
    return out


def haar2d_decompose(image: np.ndarray, levels: int) -> List:
    """Full decomposition: ``[LL_coarsest, details_1, ..., details_levels]``.

    ``details_k`` are the (LH, HL, HH) triple added when moving from
    resolution level ``k-1`` to level ``k`` (fine scales last).
    """
    if levels < 1:
        raise ValueError(f"levels must be >= 1, got {levels!r}")
    a = np.asarray(image, dtype=np.float64)
    side = min(a.shape)
    if side // (2**levels) < 1 or a.shape[0] % (2**levels) or a.shape[1] % (2**levels):
        raise ValueError(
            f"image shape {a.shape} does not support {levels} halvings"
        )
    details = []
    current = a
    for _ in range(levels):
        current, d = haar2d_forward(current)
        details.append(d)
    details.reverse()  # coarsest-first
    return [current] + details


def haar2d_reconstruct(decomposition: List, upto_level: int = -1) -> np.ndarray:
    """Rebuild the image from a decomposition, optionally stopping early.

    ``upto_level = 0`` returns the coarsest approximation, ``k`` applies the
    first ``k`` detail bands, ``-1`` (default) applies all of them.
    """
    ll = decomposition[0]
    details = decomposition[1:]
    if upto_level == -1:
        upto_level = len(details)
    if not 0 <= upto_level <= len(details):
        raise ValueError(
            f"upto_level must be in [0, {len(details)}], got {upto_level!r}"
        )
    current = ll
    for d in details[:upto_level]:
        current = haar2d_inverse(current, d)
    return current


class WaveletPyramid:
    """Server-side multiresolution store for one image.

    The pyramid caches the reconstructed approximation at every level so the
    server can cheaply answer "give me region (x, y, r) at level l" requests,
    and exposes byte encodings of regions for transmission.
    """

    def __init__(self, image: np.ndarray, levels: int):
        self.levels = int(levels)
        self.decomposition = haar2d_decompose(image, levels)
        self._approx: Dict[int, np.ndarray] = {}
        current = self.decomposition[0]
        self._approx[0] = current
        for k, d in enumerate(self.decomposition[1:], start=1):
            current = haar2d_inverse(current, d)
            self._approx[k] = current

    @property
    def full_resolution(self) -> np.ndarray:
        return self._approx[self.levels]

    def side(self, level: int) -> int:
        """Image side length at ``level``."""
        return self.level_image(level).shape[0]

    def level_image(self, level: int) -> np.ndarray:
        if level not in self._approx:
            raise ValueError(f"level must be in [0, {self.levels}], got {level!r}")
        return self._approx[level]

    def region(self, level: int, x0: int, y0: int, x1: int, y1: int) -> np.ndarray:
        """Rectangular region [x0:x1) x [y0:y1) of the level-``level`` image.

        Coordinates are clipped to the image bounds.
        """
        img = self.level_image(level)
        h, w = img.shape
        x0, x1 = max(0, x0), min(h, x1)
        y0, y1 = max(0, y0), min(w, y1)
        if x0 >= x1 or y0 >= y1:
            return np.zeros((0, 0))
        return img[x0:x1, y0:y1]

    def region_bytes(self, level: int, x0: int, y0: int, x1: int, y1: int) -> bytes:
        """Quantized byte encoding of a region (1 byte/pixel, as on the wire)."""
        region = self.region(level, x0, y0, x1, y1)
        if region.size == 0:
            return b""
        clipped = np.clip(np.round(region), 0, 255).astype(np.uint8)
        return clipped.tobytes()
