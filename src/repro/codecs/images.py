"""Synthetic image generation for the visualization workload.

The paper's server hosts "large images".  We synthesize images with natural
spatial statistics (smooth gradients + band-limited texture + edges) so
that wavelet coefficients and compression ratios behave like real imagery:
LZW reaching roughly 2:1 and bzip2 roughly 3-4:1 on the quantized pixel
streams, matching the relationships that drive Fig. 6(a).
"""

from __future__ import annotations

import numpy as np

__all__ = ["synthetic_image", "image_series"]


def synthetic_image(side: int, seed: int = 0, texture: float = 0.5) -> np.ndarray:
    """A ``side x side`` grayscale image in [0, 255] with natural statistics.

    Composition: a smooth illumination gradient, low-frequency blobs, a few
    hard-edged rectangles (text/figure-like content), and mild pixel noise.
    The default ``texture`` keeps the quantized pixels compressible like the
    document/figure imagery the application targets (LZW ~2:1, bzip2 ~3-4:1
    — the paper's "compression A"/"compression B" regime).
    """
    if side < 8 or side & (side - 1):
        raise ValueError(f"side must be a power of two >= 8, got {side!r}")
    # Seeded directly rather than via repro.sim.rng.stream: rerouting the
    # stream would change every generated image byte and hence the golden
    # figure numbers.  The explicit seed keeps this deterministic.
    rng = np.random.default_rng(seed)  # repro: allow[DET103]
    y, x = np.mgrid[0:side, 0:side].astype(np.float64) / side

    img = 96.0 + 64.0 * x + 32.0 * y  # illumination gradient

    # Low-frequency blobs: sum of random 2-D cosines.
    for _ in range(6):
        fx, fy = rng.uniform(0.5, 3.0, size=2)
        phase = rng.uniform(0, 2 * np.pi, size=2)
        amp = rng.uniform(8.0, 24.0)
        img += amp * np.cos(2 * np.pi * fx * x + phase[0]) * np.cos(
            2 * np.pi * fy * y + phase[1]
        )

    # Hard-edged rectangles.
    for _ in range(8):
        x0, y0 = rng.integers(0, side - side // 8, size=2)
        w, h = rng.integers(side // 16, side // 4, size=2)
        delta = rng.uniform(-48.0, 48.0)
        img[x0 : x0 + w, y0 : y0 + h] += delta

    img += rng.normal(0.0, texture / 4.0, size=img.shape)
    return np.clip(img, 0.0, 255.0)


def image_series(count: int, side: int, seed: int = 0) -> list:
    """``count`` distinct synthetic images (the experiments download ten)."""
    return [synthetic_image(side, seed=seed * 1000 + i) for i in range(count)]
