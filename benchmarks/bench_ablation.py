"""Ablation benchmarks on the framework's design choices (DESIGN.md A1-A5)."""


from repro.experiments import (
    hysteresis_ablation,
    isolation_ablation,
    limiter_mode_ablation,
    sampling_strategy_ablation,
    scheduler_interpolation_ablation,
)


def test_scheduler_interpolation(benchmark, save_table):
    """A1: interpolation beats the paper's discrete nearest-point lookup."""
    result = benchmark.pedantic(
        scheduler_interpolation_ablation, rounds=1, iterations=1
    )
    save_table(result, "ablation_a1_interpolation",
               "prediction error, interpolate vs nearest")
    assert result["interpolate"] < result["nearest"] * 0.5
    assert result["interpolate"] < 0.1


def test_sampling_strategies(benchmark, save_table):
    """A2: sensitivity-driven sampling beats a uniform grid at equal budget."""
    result = benchmark.pedantic(sampling_strategy_ablation, rounds=1, iterations=1)
    save_table(result, "ablation_a2_sampling",
               "interpolation error, uniform vs adaptive sampling")
    assert result["adaptive_samples"] <= result["uniform_samples"]
    assert result["adaptive"] < result["uniform"]


def test_hysteresis(benchmark, save_table):
    """A3: guards suppress thrash under small oscillations (Sec. 7.5)."""
    result = benchmark.pedantic(hysteresis_ablation, rounds=1, iterations=1)
    save_table(result, "ablation_a3_hysteresis",
               "config switches under small bandwidth oscillation")
    assert result["guarded_switches"] < result["naive_switches"]
    assert result["guarded_switches"] <= 2.0


def test_limiter_modes(benchmark, save_table):
    """A4: both limiter modes are accurate; ideal mode is tighter."""
    result = benchmark.pedantic(limiter_mode_ablation, rounds=1, iterations=1)
    save_table(result, "ablation_a4_limiters",
               "mean share-enforcement error, ideal vs quantum")
    assert result["ideal"] < 1e-6
    assert result["quantum"] < 0.03


def test_admission_isolation(benchmark, save_table):
    """A5: co-located sandboxes match single-tenant expectations (Sec 6.2)."""
    result = benchmark.pedantic(isolation_ablation, rounds=1, iterations=1)
    save_table(result, "ablation_a5_isolation",
               "co-located sandbox deviation from single-tenant time")
    assert result["worst_deviation"] < 0.01
