"""Benchmarks reproducing Figure 4: testbed vs physical machines."""

import pytest

from repro.experiments import run_fig4a, run_fig4b


def test_fig4a(benchmark, save_figure):
    """Fig 4a: clock-ratio emulation matches physical toy-app times."""
    result = benchmark.pedantic(run_fig4a, rounds=1, iterations=1)
    save_figure(result, "fig4a")
    physical = result.series["physical"]
    emulated = result.series["testbed (PII-450, clock-ratio share)"]
    for x in physical.xs:
        assert emulated.y_at(x) == pytest.approx(physical.y_at(x), rel=0.03), (
            f"machine index {x}: emulation error above 3%"
        )
    # The PPro-200 (slower clock) takes longer than the PII-333.
    assert physical.y_at(1) > physical.y_at(0)


def test_fig4b(benchmark, save_figure):
    """Fig 4b: SpecInt-ratio emulation of the viz app within ~8%."""
    result = benchmark.pedantic(run_fig4b, rounds=1, iterations=1)
    save_figure(result, "fig4b")
    physical = result.series["physical"]
    emulated = result.series["testbed (PII-450, SpecInt-ratio share)"]
    # PII-333 emulation is tight; PPro-200 may drift up to the paper's ~8%.
    err_333 = abs(emulated.y_at(0) - physical.y_at(0)) / physical.y_at(0)
    err_200 = abs(emulated.y_at(1) - physical.y_at(1)) / physical.y_at(1)
    assert err_333 < 0.05
    assert err_200 < 0.10
    # The paper observes the bigger error on the PPro-200.
    assert err_200 > err_333
