"""Benchmark-harness plumbing: artifact saving and shared fixtures.

Every benchmark regenerates one paper figure (or ablation table), asserts
its qualitative shape, and writes the rendered series to
``benchmarks/out/`` so EXPERIMENTS.md can cite actual program output.
"""

from __future__ import annotations

import gc
import json
from pathlib import Path
from time import perf_counter  # repro: allow[DET101] -- benchmark harness timing

import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def interleaved_best():
    """Best-of-N wall clock per fn, interleaved to dodge scheduler drift.

    The one timing harness every overhead benchmark shares
    (``bench_obs`` / ``bench_recovery`` / ``bench_sim``):

    - **interleaved** — scheduler and thermal drift between *blocks* of
      rounds would otherwise bias the comparison toward whichever
      variant ran in the quiet block;
    - **repeats per sample** — keeps each sample long relative to timer
      jitter;
    - **gc-controlled** — each sample runs with the cyclic collector
      off (collected *between* samples): a GC pause landing inside one
      variant's window would otherwise dominate few-hundred-ms runs;
    - **warmed up** — every fn runs once before the first sample so
      import/allocator warm-up is not charged to the first variant.
    """

    def _measure(fns, rounds: int = 8, repeats: int = 2):
        for fn in fns:
            fn()
        best = [float("inf")] * len(fns)
        for _ in range(rounds):
            for i, fn in enumerate(fns):
                gc.collect()
                gc.disable()
                try:
                    t0 = perf_counter()  # repro: allow[DET101] -- benchmark harness timing
                    for _ in range(repeats):
                        fn()
                    best[i] = min(best[i], (perf_counter() - t0) / repeats)  # repro: allow[DET101] -- benchmark harness timing
                finally:
                    gc.enable()
        return best

    return _measure


@pytest.fixture(scope="session")
def paired_ratios():
    """Drift-cancelling per-round timing ratios for overhead gates.

    ``interleaved_best`` is the right tool for *throughput* numbers, but
    best-of-N is fragile for tight overhead gates on a shared machine:
    CPU throttling drifts the floor between rounds, so each variant's
    "best" may come from a different load regime and the ratio of bests
    is noise (it can even go negative).  Worse, throttling *ramps
    within* a round, so naive back-to-back pairs systematically charge
    the ramp to whichever variant runs second.

    This harness interleaves ``b, f, b, f, ..., b`` and scores each
    variant sample against the **mean of its two baseline neighbours**,
    which cancels linear drift exactly; the **median** over rounds then
    rejects the samples a noisy neighbour lands on.

    Returns ``(ratios, times)``: per-round ``t_fn / t_baseline``
    ratio lists (one list per fn) and the per-fn best wall-clock
    ``[baseline, *fns]`` (same gc-isolated, warmed-up sampling
    discipline as ``interleaved_best``).
    """

    def _sample(fn):
        gc.collect()
        gc.disable()
        try:
            t0 = perf_counter()  # repro: allow[DET101] -- benchmark harness timing
            fn()
            return perf_counter() - t0  # repro: allow[DET101] -- benchmark harness timing
        finally:
            gc.enable()

    def _measure(baseline, fns, rounds: int = 8):
        for fn in (baseline, *fns):
            fn()
        ratios = [[] for _ in fns]
        best = [float("inf")] * (1 + len(fns))
        prev = _sample(baseline)
        best[0] = prev
        for _ in range(rounds):
            samples = [_sample(fn) for fn in fns]
            nxt = _sample(baseline)
            anchor = (prev + nxt) / 2
            for i, dt in enumerate(samples):
                ratios[i].append(dt / anchor)
                best[1 + i] = min(best[1 + i], dt)
            best[0] = min(best[0], nxt)
            prev = nxt
        return ratios, best

    return _measure


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def save_figure(artifact_dir):
    """Persist a FigureResult as .txt (rendered) and .json (raw series)."""

    def _save(result, name: str) -> None:
        (artifact_dir / f"{name}.txt").write_text(result.render() + "\n")
        payload = {
            "figure": result.figure,
            "title": result.title,
            "xlabel": result.xlabel,
            "ylabel": result.ylabel,
            "series": {label: s.points for label, s in result.series.items()},
            "notes": result.notes,
        }
        (artifact_dir / f"{name}.json").write_text(json.dumps(payload, indent=1))

    return _save


@pytest.fixture
def save_table(artifact_dir):
    """Persist a plain dict result as .json with a rendered .txt twin."""

    def _save(data: dict, name: str, title: str = "") -> None:
        lines = [f"== {name}: {title} =="] + [
            f"  {k}: {v:.6g}" if isinstance(v, float) else f"  {k}: {v}"
            for k, v in data.items()
        ]
        (artifact_dir / f"{name}.txt").write_text("\n".join(lines) + "\n")
        (artifact_dir / f"{name}.json").write_text(json.dumps(data, indent=1))

    return _save
