"""Benchmark-harness plumbing: artifact saving and shared fixtures.

Every benchmark regenerates one paper figure (or ablation table), asserts
its qualitative shape, and writes the rendered series to
``benchmarks/out/`` so EXPERIMENTS.md can cite actual program output.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def save_figure(artifact_dir):
    """Persist a FigureResult as .txt (rendered) and .json (raw series)."""

    def _save(result, name: str) -> None:
        (artifact_dir / f"{name}.txt").write_text(result.render() + "\n")
        payload = {
            "figure": result.figure,
            "title": result.title,
            "xlabel": result.xlabel,
            "ylabel": result.ylabel,
            "series": {label: s.points for label, s in result.series.items()},
            "notes": result.notes,
        }
        (artifact_dir / f"{name}.json").write_text(json.dumps(payload, indent=1))

    return _save


@pytest.fixture
def save_table(artifact_dir):
    """Persist a plain dict result as .json with a rendered .txt twin."""

    def _save(data: dict, name: str, title: str = "") -> None:
        lines = [f"== {name}: {title} =="] + [
            f"  {k}: {v:.6g}" if isinstance(v, float) else f"  {k}: {v}"
            for k, v in data.items()
        ]
        (artifact_dir / f"{name}.txt").write_text("\n".join(lines) + "\n")
        (artifact_dir / f"{name}.json").write_text(json.dumps(data, indent=1))

    return _save
