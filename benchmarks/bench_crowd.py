"""Benchmark for the crowd subsystem: million-user aggregate populations.

Beyond the figure artifact, this benchmark enforces the aggregation
layer's headline guarantees (docs/scale.md):

* **Determinism at scale** — two same-seed 1M-user diurnal runs produce
  byte-identical payloads: all crowd randomness comes from the dedicated
  ``"crowd"`` stream, and every mid-run read is a passive projection.
* **Adaptation still fires** — the controller completes at least one
  trigger -> decision -> switch cycle *during* the diurnal congestion
  episodes, and the flash scenario drives one full brownout cycle
  (enter and exit) through the overload guard.
* **Aggregation pays** — the 1M-user columnar run stays within 10x the
  wall clock of the 100-coroutine baseline scenario (in practice it is
  faster: event count per tick is O(classes), not O(users)).
* **Nobody starves** — the premium class rides through both scenarios
  with zero shed and zero lost requests.

Headline numbers land in ``benchmarks/out/BENCH_crowd.json``; the
committed copy is the baseline ``repro bench check`` compares against.
"""

import json

from repro.experiments import run_crowd

_ROUNDS = 3
_REPEATS = 1
_MAX_SLOWDOWN = 10.0


def test_crowd_diurnal_trajectory(benchmark, save_figure, artifact_dir):
    result, payload = benchmark.pedantic(
        lambda: run_crowd(seed=0, scenario="diurnal"), rounds=1, iterations=1
    )
    save_figure(result, "crowd_diurnal")
    encoded = json.dumps(payload, sort_keys=True, indent=1)
    (artifact_dir / "crowd_diurnal.json").write_text(encoded + "\n")

    assert payload["users"] == 1_000_000
    assert payload["finished"], "interactive session must survive the crowd"
    assert payload["crowd_closed"]

    # The diurnal peaks congest the reply link; the monitor sees the
    # interactive session's bandwidth leave the decision's validity
    # region and the scheduler re-decides lzw -> bzip2 mid-episode.
    switches = [(s["from"], s["to"]) for s in payload["switches"]]
    assert len(switches) >= 1, "no adaptation fired at 1M users"
    assert ("c=lzw,dR=320,l=4", "c=bzip2,dR=320,l=4") in switches
    kinds = [e["kind"] for e in payload["events"]]
    assert "trigger" in kinds and "decision" in kinds and "applied" in kinds

    # Conservation: every issued request resolves to exactly one outcome.
    for name in ("free", "premium"):
        row = payload["classes"][name]
        assert row["served"] + row["shed"] + row["lost"] == row["issued"]
        assert row["inflight"] == 0
    # The free tier takes the peak-hour QoS hit; premium is protected.
    free, premium = payload["classes"]["free"], payload["classes"]["premium"]
    assert free["violated"] > 0
    assert premium["shed"] == 0 and premium["lost"] == 0
    assert premium["violated"] == 0
    assert free["issued"] > 1_000_000  # a genuinely large population


def test_crowd_flash_brownout_cycle(save_figure, artifact_dir):
    result, payload = run_crowd(seed=0, scenario="flash")
    save_figure(result, "crowd_flash")
    encoded = json.dumps(payload, sort_keys=True, indent=1)
    (artifact_dir / "crowd_flash.json").write_text(encoded + "\n")

    assert payload["finished"]
    ov = payload["overload"]
    # Sustained link-level overload (undelivered replies, not CPU queue)
    # tripped shedding, brownout entered, the cheap config drained the
    # backlog, and the window *closed* while the run was still live.
    assert ov["shed"] > 0
    assert ov["shed_hard"] == 0, "soft shedding should absorb the spike"
    windows = ov["brownout_windows"]
    assert len(windows) == 1 and windows[0][1] is not None
    switches = [(s["from"], s["to"]) for s in payload["switches"]]
    assert ("c=lzw,dR=320,l=4", "c=lzw,dR=320,l=3") in switches
    assert ("c=lzw,dR=320,l=3", "c=lzw,dR=320,l=4") in switches
    assert payload["final_config"] == "c=lzw,dR=320,l=4"

    free, premium = payload["classes"]["free"], payload["classes"]["premium"]
    assert free["shed"] > 0, "the spike must actually be shed"
    assert premium["shed"] == 0 and premium["lost"] == 0


def test_crowd_million_user_byte_identity():
    """Same seed => byte-identical payload at 1,000,000 users."""
    _, first = run_crowd(seed=0, scenario="diurnal")
    _, second = run_crowd(seed=0, scenario="diurnal")
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    _, other = run_crowd(seed=1, scenario="diurnal")
    assert json.dumps(first, sort_keys=True) != json.dumps(other, sort_keys=True)


def test_crowd_headline_numbers(artifact_dir, interleaved_best):
    """Write BENCH_crowd.json for ``repro bench check``.

    Exact fields are deterministic guarantees; ``*_s`` floats are
    wall-clock bands.  ``within_10x`` is the acceptance bound from the
    aggregation design: a 1M-user aggregate run may cost at most 10x the
    100-coroutine baseline scenario.
    """
    _, diurnal = run_crowd(seed=0, scenario="diurnal")
    _, diurnal2 = run_crowd(seed=0, scenario="diurnal")
    _, flash = run_crowd(seed=0, scenario="flash")

    crowd_s, baseline_s = interleaved_best(
        [
            lambda: run_crowd(seed=0, scenario="diurnal"),
            lambda: run_crowd(seed=0, scenario="baseline"),
        ],
        rounds=_ROUNDS, repeats=_REPEATS,
    )
    slowdown = crowd_s / baseline_s
    assert slowdown <= _MAX_SLOWDOWN, (
        f"1M-user aggregate run costs {slowdown:.2f}x the 100-coroutine "
        f"baseline (limit {_MAX_SLOWDOWN:.0f}x)"
    )

    free = diurnal["classes"]["free"]
    premium = diurnal["classes"]["premium"]
    record = {
        "replay_identical": json.dumps(diurnal, sort_keys=True)
        == json.dumps(diurnal2, sort_keys=True),
        "finished": bool(diurnal["finished"]),
        "users": diurnal["users"],
        "diurnal_switches": len(diurnal["switches"]),
        "adapted": len(diurnal["switches"]) >= 1,
        "free_issued": free["issued"],
        "free_served": free["served"],
        "free_lost": free["lost"],
        "free_violated": free["violated"],
        "premium_issued": premium["issued"],
        "premium_violated": premium["violated"],
        "premium_protected": premium["shed"] == 0 and premium["lost"] == 0,
        "flash_shed": flash["classes"]["free"]["shed"],
        "flash_brownout_windows": len(flash["overload"]["brownout_windows"]),
        "flash_brownout_closed": all(
            t1 is not None for _t0, t1 in flash["overload"]["brownout_windows"]
        ),
        "crowd_1m_s": round(crowd_s, 3),
        "coroutine_100_s": round(baseline_s, 3),
        "crowd_vs_baseline_overhead": round(slowdown, 3),
        "within_10x": slowdown <= _MAX_SLOWDOWN,
    }
    (artifact_dir / "BENCH_crowd.json").write_text(
        json.dumps(record, indent=1, sort_keys=True) + "\n"  # repro: allow[DET501] -- benchmark wall-time report, not sim state
    )
