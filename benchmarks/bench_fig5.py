"""Benchmarks reproducing Figure 5: fovea-size tradeoffs vs CPU share."""

import pytest

from repro.experiments import run_fig5


@pytest.fixture(scope="module")
def fig5_results():
    return run_fig5()


def test_fig5a(benchmark, save_figure, fig5_results):
    """Fig 5a: transmission time falls with CPU share; larger fovea wins."""
    fig_a, _ = benchmark.pedantic(lambda: fig5_results, rounds=1, iterations=1)
    save_figure(fig_a, "fig5a")
    for label, series in fig_a.series.items():
        assert series.monotone() == "decreasing", f"{label} not decreasing in share"
    # At every sampled share: bigger fovea -> strictly smaller transmit time.
    s80, s160, s320 = (
        fig_a.series["fovea=80"],
        fig_a.series["fovea=160"],
        fig_a.series["fovea=320"],
    )
    for x in s80.xs:
        assert s320.y_at(x) < s160.y_at(x) < s80.y_at(x), f"at share {x}%"


def test_fig5b(benchmark, save_figure, fig5_results):
    """Fig 5b: response time falls with share; larger fovea loses (opposite
    trend to Fig 5a — the paper's central tension)."""
    _, fig_b = benchmark.pedantic(lambda: fig5_results, rounds=1, iterations=1)
    save_figure(fig_b, "fig5b")
    for label, series in fig_b.series.items():
        assert series.monotone() == "decreasing", f"{label} not decreasing in share"
    s80, s160, s320 = (
        fig_b.series["fovea=80"],
        fig_b.series["fovea=160"],
        fig_b.series["fovea=320"],
    )
    for x in s80.xs:
        assert s320.y_at(x) > s160.y_at(x) > s80.y_at(x), f"at share {x}%"
    # Experiment-3 decision structure: fovea 320 meets the 1 s bound at
    # 90% CPU but not at 40%, where only fovea 80 meets it.
    assert s320.y_at(90) < 1.0 < s320.y_at(40)
    assert s160.y_at(40) > 1.0
    assert s80.y_at(40) < 1.0
