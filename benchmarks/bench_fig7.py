"""Benchmarks reproducing Figure 7: the three run-time adaptation
experiments of Section 7."""

import pytest

from repro.experiments import run_experiment1, run_experiment2, run_experiment3


def test_fig7a(benchmark, save_figure):
    """Experiment 1: compression adapts to a bandwidth drop.

    Checks the paper's full narrative: initial configuration is A (LZW),
    the drop triggers a switch to B (bzip2), steady-state segments track
    the matching static curves, and the adaptive total beats both statics
    (paper: 160 s vs 260 s for static A).
    """
    result, runs = benchmark.pedantic(run_experiment1, rounds=1, iterations=1)
    save_figure(result, "fig7a")
    adaptive = runs["adaptive"]
    assert adaptive.switches, "no adaptation happened"
    t_switch, old, new = adaptive.switches[0]
    assert (old.c, new.c) == ("lzw", "bzip2")
    assert t_switch > 25.0, "switch must follow the bandwidth drop"
    # Before the drop, adaptive tracks static A exactly.
    pre_adaptive = [d for t, d in adaptive.image_series if t < 25.0]
    pre_static = [d for t, d in runs["lzw"].image_series if t < 25.0]
    assert pre_adaptive == pytest.approx(pre_static, rel=0.02)
    # After the switch, adaptive per-image time matches static B's
    # low-bandwidth steady state.
    post_adaptive = [d for t, d in adaptive.image_series if t > t_switch + 40]
    post_static_b = [d for t, d in runs["bzip2"].image_series if t > 120]
    assert post_adaptive, "no post-switch images"
    assert post_adaptive[-1] == pytest.approx(post_static_b[-1], rel=0.05)
    # Totals: adaptive < static B < static A (the paper's 160 vs 260 story).
    assert adaptive.total_time < runs["bzip2"].total_time
    assert adaptive.total_time < runs["lzw"].total_time * 0.8


def test_fig7b(benchmark, save_figure):
    """Experiment 2: resolution degrades to hold the 10 s deadline."""
    result, runs = benchmark.pedantic(run_experiment2, rounds=1, iterations=1)
    save_figure(result, "fig7b")
    adaptive = runs["adaptive"]
    assert adaptive.switches, "no adaptation happened"
    t_switch, old, new = adaptive.switches[0]
    assert (old.l, new.l) == (4, 3)
    assert t_switch > 30.0
    # Before the drop: level 4 within the deadline (paper: just under 10 s).
    pre = [d for t, d in adaptive.image_series if t < 30.0]
    assert pre and all(d <= 10.0 for d in pre)
    assert pre[0] == pytest.approx(10.0, rel=0.15)
    # Static level 4 violates the deadline after the drop (paper: ~18 s).
    post_static4 = [d for t, d in runs["l4"].image_series if t > 50.0]
    assert post_static4 and min(post_static4) > 10.0
    assert post_static4[-1] == pytest.approx(18.0, rel=0.25)
    # Adaptive recovers to level 3's fast rate (paper: ~4 s).
    post = [d for t, d in adaptive.image_series if t > t_switch + 5]
    assert post and all(d <= 10.0 for d in post)
    assert post[-1] == pytest.approx(4.0, rel=0.35)


def test_fig7cd(benchmark, save_figure):
    """Experiment 3: fovea shrinks to hold the 1 s response bound."""
    fig_c, fig_d, runs = benchmark.pedantic(run_experiment3, rounds=1, iterations=1)
    save_figure(fig_c, "fig7c")
    save_figure(fig_d, "fig7d")
    adaptive = runs["adaptive"]
    assert adaptive.switches, "no adaptation happened"
    t_switch, old, new = adaptive.switches[0]
    assert old.dR == 320, "initial configuration must be the large fovea"
    assert new.dR == 80, "scheduler must pick the small fovea (paper's choice)"
    assert t_switch > 40.0
    # Static 320 violates the bound after the drop: its *average* response
    # exceeds 1 s (paper: ~1.4 s).
    viol = [d for t, d in runs["dR320"].response_series if t > 45.0]
    assert viol and sum(viol) / len(viol) > 1.0
    # Adaptive average response returns under the bound after the switch
    # (the constraint is on the average of user-interaction rounds).
    post = [d for t, d in adaptive.response_series if t > t_switch + 1.0]
    assert post and sum(post) / len(post) < 1.0
    assert max(post) < max(viol), "worst-case round must improve too"
    # Fig 7d: before the drop, adaptive transmission tracks static 320.
    pre_d = [d for t, d in adaptive.image_series if t < 40.0]
    pre_static = [d for t, d in runs["dR320"].image_series if t < 40.0]
    assert pre_d == pytest.approx(pre_static, rel=0.02)
