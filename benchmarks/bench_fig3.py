"""Benchmarks reproducing Figure 3: sandbox CPU control fidelity."""

import numpy as np
import pytest

from repro.experiments import run_fig3a, run_fig3b


def test_fig3a(benchmark, save_figure):
    """Fig 3a: measured usage tracks the 80% -> 40% -> 60% share schedule."""
    result = benchmark.pedantic(run_fig3a, rounds=1, iterations=1)
    save_figure(result, "fig3a")
    measured = result.series["measured"]

    def window_mean(t0, t1):
        vals = [y for x, y in measured.points if t0 <= x <= t1]
        assert vals, f"no usage samples in [{t0}, {t1}]"
        return float(np.mean(vals))

    # Steady-state windows (skipping 3 s after each change for settling).
    assert window_mean(3, 19) == pytest.approx(0.8, abs=0.05)
    assert window_mean(23, 49) == pytest.approx(0.4, abs=0.05)
    assert window_mean(53, 79) == pytest.approx(0.6, abs=0.05)


def test_fig3b(benchmark, save_figure):
    """Fig 3b: testbed time ~= expected except at 100% share (daemons)."""
    result = benchmark.pedantic(run_fig3b, rounds=1, iterations=1)
    save_figure(result, "fig3b")
    measured = result.series["measured (testbed)"]
    expected = result.series["expected (baseline/share)"]
    for share_pct in (10, 20, 30, 40, 50, 60, 70, 80, 90):
        m, e = measured.y_at(share_pct), expected.y_at(share_pct)
        assert m == pytest.approx(e, rel=0.06), f"share {share_pct}%"
    # At 100% the daemons steal CPU: measured must exceed expected by a
    # visible margin (the paper's footnote-2 effect).
    m100, e100 = measured.y_at(100), expected.y_at(100)
    assert m100 > e100 * 1.005
    # Both curves fall with share (more CPU -> faster).
    assert measured.monotone() == "decreasing"
