"""Macro-benchmark for the simulation kernel and its self-profiler.

A calibrated mixed workload — the fig5 profiling sweep (database
construction over the CPU-share axis), the chaos run (faults +
adaptation), and the recovery run (supervision + checkpoints + failover)
— exercised end to end, reporting:

* **events/sec** — kernel throughput over the whole workload (steps are
  exact and deterministic; the wall clock is the best sample from the
  shared gc-isolated ``paired_ratios`` harness).
* **profiler overhead** — the same workload with a default
  (burst-sampling) :class:`~repro.obs.KernelProfiler` attached must cost
  < 5 % extra.  Measured as the *median of drift-cancelling paired
  ratios* (see ``paired_ratios`` in conftest): on a shared/throttled
  machine best-of-N floors drift between rounds and their ratio is
  noise, while scoring each profiled sample against the mean of its two
  bare neighbours cancels the drift round by round.
* **byte identity** — asserted *always*, not sampled: each workload
  component's output with the profiler attached is byte-identical to
  the bare run.
* **coverage** — the profiler must attribute >= 95 % of the kernel
  wall-clock it measured to named buckets (attribution is structural —
  ``run()`` boundaries close the books — so this guards hook
  regressions, not a heuristic).
* **per-subsystem cost shares** — bucket seconds folded into coarse
  subsystems (process resumes, fluid-share updates, network callbacks,
  process lifecycle), the numbers ROADMAP item 1's "where does kernel
  time go" question asks for.

Headline numbers land in ``benchmarks/out/BENCH_sim.json``; the
committed copy is the baseline ``repro bench check`` compares against
(``steps`` / ``pushes`` / ``bytes_identical`` are exact deterministic
fields, the wall-clock-derived floats are banded).
"""

import json
from statistics import median

from repro.experiments import fig5_database, run_chaos, run_recovery
from repro.obs import KernelProfiler

_ROUNDS = 9
_MAX_OVERHEAD = 0.05
_MIN_COVERAGE = 0.95

#: Coarse subsystem classification of profile buckets, in match order.
_SUBSYSTEMS = (
    ("fluid", "FluidShare."),
    ("network", "Network."),
    ("network", "Link."),
    ("lifecycle", "kernel;init;"),
    ("lifecycle", "kernel;exit;"),
    ("processes", ";proc:"),
)


def _workload(profiler=None):
    """One pass of the mixed macro-workload (profiler optional)."""
    fig5_database(seed=0, profiler=profiler)
    run_chaos(seed=0, profiler=profiler)
    run_recovery(seed=0, profiler=profiler)


def _subsystem_shares(profiler):
    """Fold bucket seconds into coarse subsystem shares of kernel wall."""
    totals = {"processes": 0.0, "fluid": 0.0, "network": 0.0,
              "lifecycle": 0.0, "other": 0.0}
    for name, (count, seconds) in profiler.buckets.items():
        if name == "kernel;external":
            continue
        for subsystem, needle in _SUBSYSTEMS:
            if needle in name:
                totals[subsystem] += seconds
                break
        else:
            totals["other"] += seconds
    kernel = profiler.kernel_wall
    if kernel <= 0:
        return {k: 0.0 for k in totals}
    return {k: round(v / kernel, 4) for k, v in totals.items()}


def test_profiled_workload_byte_identical():
    """Profiler on vs off: every workload output must be byte-identical.

    Asserted always (not best-of-N sampled): this is the deterministic
    guarantee the profiler advertises, independent of wall-clock noise.
    """
    profiler = KernelProfiler()

    db_bare, _, _ = fig5_database(seed=0)
    db_prof, _, _ = fig5_database(seed=0, profiler=profiler)
    assert json.dumps(db_prof.to_dict(), sort_keys=True) == json.dumps(
        db_bare.to_dict(), sort_keys=True
    )

    _, chaos_bare = run_chaos(seed=0)
    _, chaos_prof = run_chaos(seed=0, profiler=profiler)
    assert json.dumps(chaos_prof, sort_keys=True) == json.dumps(
        chaos_bare, sort_keys=True
    )

    _, rec_bare = run_recovery(seed=0)
    _, rec_prof = run_recovery(seed=0, profiler=profiler)
    assert json.dumps(rec_prof, sort_keys=True) == json.dumps(
        rec_bare, sort_keys=True
    )

    # The profile itself is non-trivial: the workload was observed.
    assert profiler.steps > 10_000
    assert profiler.sampled_steps > 0


def test_sim_throughput_and_profiler_overhead(artifact_dir, paired_ratios):
    """events/sec headline; default profiler < 5 % overhead, >= 95 % coverage."""
    profilers = []

    def bare():
        _workload()

    def profiled():
        profiler = KernelProfiler()
        _workload(profiler)
        profilers.append(profiler)

    (ratios,), (base, prof) = paired_ratios(bare, [profiled], rounds=_ROUNDS)
    overhead = median(ratios) - 1.0

    profiler = profilers[-1]
    summary = profiler.summary()
    steps = summary["sim"]["steps"]
    coverage = summary["wall"]["coverage"]
    shares = _subsystem_shares(profiler)

    record = {
        # Deterministic structural fields (exact in `repro bench check`).
        "steps": steps,
        "pushes": summary["sim"]["pushes"],
        "bytes_identical": True,
        "rounds": _ROUNDS,
        # Wall-clock-derived fields (banded).  `events_per_second`
        # deliberately avoids the `_s` timing suffix: it is
        # higher-is-better.  The overhead is the median paired ratio,
        # not prof/base (bests may come from different load regimes).
        "events_per_second": round(steps / base, 1),
        "bare_s": round(base, 3),
        "profiled_s": round(prof, 3),
        "overhead_profiled": round(max(overhead, 0.0), 4),
        "coverage": round(coverage, 4),
        "share_processes": shares["processes"],
        "share_fluid": shares["fluid"],
        "share_network": shares["network"],
        "share_lifecycle": shares["lifecycle"],
        "share_other": shares["other"],
    }
    (artifact_dir / "BENCH_sim.json").write_text(
        json.dumps(  # repro: allow[DET501] -- benchmark wall-time report, not sim state
            record, indent=1, sort_keys=True
        )
        + "\n"
    )

    assert coverage >= _MIN_COVERAGE, (
        f"profiler attributed only {coverage:.1%} of measured kernel "
        f"wall-clock to named buckets (floor {_MIN_COVERAGE:.0%})"
    )
    assert overhead < _MAX_OVERHEAD, (
        f"default profiler overhead {overhead:.1%} (median of "
        f"{len(ratios)} paired ratios) exceeds {_MAX_OVERHEAD:.0%} "
        f"(bare best {base:.3f}s, profiled best {prof:.3f}s)"
    )
