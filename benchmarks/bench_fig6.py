"""Benchmarks reproducing Figure 6: compression and resolution tradeoffs."""

import pytest

from repro.experiments import run_fig6a, run_fig6b


def test_fig6a(benchmark, save_figure):
    """Fig 6a: the compression crossover.

    Both curves fall with bandwidth; bzip2 ("B") wins at low bandwidth,
    LZW ("A") wins at high bandwidth, and a single crossover lies between.
    """
    result = benchmark.pedantic(run_fig6a, rounds=1, iterations=1)
    save_figure(result, "fig6a")
    a = result.series["A (LZW)"]
    b = result.series["B (bzip2)"]
    assert a.monotone() == "decreasing"
    assert b.monotone() == "decreasing"
    assert b.y_at(50) < a.y_at(50), "B must win at 50 KB/s (paper: 24 vs 40 s)"
    assert a.y_at(500) < b.y_at(500), "A must win at 500 KB/s (paper: 5 vs 12 s)"
    # Exactly one sign change along the sweep (a clean crossover).
    signs = [a.y_at(x) - b.y_at(x) > 0 for x in a.xs]
    changes = sum(1 for s0, s1 in zip(signs, signs[1:]) if s0 != s1)
    assert changes == 1
    result.note(
        f"crossover between {max(x for x, s in zip(a.xs, signs) if s):g} "
        f"and {min(x for x, s in zip(a.xs, signs) if not s):g} KB/s"
    )
    save_figure(result, "fig6a")


def test_fig6b(benchmark, save_figure):
    """Fig 6b: higher resolution costs more; less CPU costs more.

    The Experiment-2 decision structure must hold: level 4 meets the 10 s
    deadline at 90% CPU but not at 40%, where level 3 comes in far under.
    """
    result = benchmark.pedantic(run_fig6b, rounds=1, iterations=1)
    save_figure(result, "fig6b")
    l3 = result.series["level 3"]
    l4 = result.series["level 4"]
    assert l3.monotone() == "decreasing"
    assert l4.monotone() == "decreasing"
    for x in l3.xs:
        assert l4.y_at(x) > l3.y_at(x), f"level 4 must dominate at share {x}%"
    assert l4.y_at(90) < 10.0
    assert l4.y_at(40) > 10.0
    assert l3.y_at(40) < 10.0
    # Paper's specific anchors: level 4 @40% ~= 18 s, level 3 @40% ~= 4 s.
    assert l4.y_at(40) == pytest.approx(18.0, rel=0.25)
    assert l3.y_at(40) == pytest.approx(4.0, rel=0.35)
