"""Benchmark for the recovery subsystem: supervision, failover, overload.

Beyond the figure artifact, this benchmark enforces the recovery layer's
headline guarantees (docs/robustness.md):

* **Determinism** — two supervised same-seed runs produce byte-identical
  payloads: restart jitter comes from the dedicated ``"recovery"`` RNG
  stream and checkpointing is strictly passive.
* **Supervision pays** — supervised availability beats the unsupervised
  baseline for every service the crash storm touches.
* **Checkpoints pay** — warm (checkpoint-resumed) controller restarts
  come back strictly faster than cold ones: MTTR(warm) < MTTR(cold).
* **Failover is bounded** — the standby takes over within the watchdog
  window (``takeover_after`` + two heartbeat periods).
* **Recovery is free when off** — attaching an idle supervisor to the
  chaos run costs < 5 % wall clock and does not perturb the payload.

Headline numbers land in ``benchmarks/out/BENCH_recovery.json``; the
committed copy is the baseline ``repro bench check`` compares against.
"""

import json

from repro.experiments import run_chaos, run_recovery

#: Mirrors the FailoverMember parameters run_recovery wires up: a standby
#: declares the primary lost after ``takeover_after`` without heartbeats,
#: and the declaration itself can lag by up to two watchdog periods.
_TAKEOVER_AFTER = 1.5
_HEARTBEAT_PERIOD = 0.5
_WATCHDOG_WINDOW = _TAKEOVER_AFTER + 2 * _HEARTBEAT_PERIOD

_ROUNDS = 8
_REPEATS = 3
_MAX_IDLE_OVERHEAD = 0.05


def test_recovery_trajectory(benchmark, save_figure, artifact_dir):
    result, payload = benchmark.pedantic(
        lambda: run_recovery(seed=0), rounds=1, iterations=1
    )
    save_figure(result, "recovery_figure")
    encoded = json.dumps(payload, sort_keys=True, indent=1)
    (artifact_dir / "recovery.json").write_text(encoded + "\n")

    # The crash storm fired: two server kills, one controller kill, one
    # windowed host crash — and every kill produced a supervised restart.
    actions = [e["action"] for e in payload["injections"]]
    assert actions.count("kill") == 3
    assert "crash" in actions and "crash-recovered" in actions
    rec = payload["recovery"]
    assert rec["kills"] == 3
    assert rec["restarts"] == 3
    assert rec["escalations"] == 0
    assert rec["services"]["viz-server"]["restarts"] == 2
    assert rec["services"]["controller"]["restarts"] == 1
    # Teardown closed the books: nobody is mid-restart at the end.
    assert all(s["state"] == "stopped" for s in rec["services"].values())
    # Warm restarts: every MTTR record resumed from a checkpoint.
    assert rec["mttr"] and all(m["warm"] for m in rec["mttr"])
    assert rec["checkpoints"] > 0

    # The flash crowd was shed (QoS class 0) while the interactive
    # session (QoS class 1) never lost a round.
    ov = payload["overload"]
    assert ov["crowd_shed"] > 0 and ov["crowd_served"] > 0
    assert ov["shed_hard"] == 0, "soft shedding should absorb the crowd"
    assert ov["interactive_shed_rounds"] == 0

    # Sustained shedding tripped brownout into the cheap configuration
    # and handed back after the crowd passed.
    windows = ov["brownout_windows"]
    assert len(windows) == 1 and windows[0][1] is not None
    switches = [(s["from"], s["to"]) for s in payload["switches"]]
    assert ("c=lzw,dR=320,l=4", "c=lzw,dR=320,l=3") in switches
    assert ("c=lzw,dR=320,l=3", "c=lzw,dR=320,l=4") in switches
    assert payload["final_config"] == "c=lzw,dR=320,l=4"

    # The standby took over while the controller waited out its backoff
    # (and again during the host crash), each within the watchdog window.
    fo = payload["failover"]["server"]
    assert fo["takeovers"] >= 1
    assert fo["handbacks"] == fo["takeovers"]
    assert fo["latencies"] and all(
        lat <= _WATCHDOG_WINDOW for lat in fo["latencies"]
    )
    assert payload["failover"]["client"]["active_at_end"]

    # The interactive workload survived the whole storm.
    assert payload["finished"]
    assert len(payload["image_times"]) == payload["n_images"]


def test_recovery_deterministic_replay():
    """Same seed => byte-identical payload, supervision and all."""
    _, first = run_recovery(seed=0)
    _, second = run_recovery(seed=0)
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    # A different seed perturbs at least the restart jitter and crowd.
    _, other = run_recovery(seed=7)
    assert json.dumps(first, sort_keys=True) != json.dumps(other, sort_keys=True)


def test_recovery_race_clean():
    """The seeded recovery run has no tie-order races on shared state.

    The detector watches every host mailbox, both exchanges' estimate
    tables, *and* the recovery subsystem's own shared state: the
    supervisor's service registry and restart planning, the checkpoint
    store's tables, each failover member's heartbeat/rank state, and the
    overload guard's admission path.  An empty report means none of it
    is ordered merely by the event queue's FIFO tiebreak.
    """
    _, payload = run_recovery(seed=0, detect_races=True)
    assert payload["races"] == [], payload["races"]

    # The detector is passive: stripping its report recovers the baseline.
    _, baseline = run_recovery(seed=0)
    payload.pop("races")
    assert json.dumps(payload, sort_keys=True) == json.dumps(
        baseline, sort_keys=True
    )


def test_recovery_tiebreak_invisible():
    """Installing a tiebreak policy with no directives is byte-invisible.

    The schedule explorer's whole soundness argument rests on this: the
    identity policy (and an empty ``DemoteTiebreak``) must reproduce the
    default FIFO payload bit for bit.
    """
    from repro.analysis.schedule import DemoteTiebreak, FifoTiebreak

    _, baseline = run_recovery(seed=0)
    _, fifo = run_recovery(seed=0, tiebreak=FifoTiebreak())
    _, empty = run_recovery(seed=0, tiebreak=DemoteTiebreak({}))
    assert json.dumps(fifo, sort_keys=True) == json.dumps(
        baseline, sort_keys=True
    )
    assert json.dumps(empty, sort_keys=True) == json.dumps(
        baseline, sort_keys=True
    )


def test_supervised_availability_beats_unsupervised():
    """Restarting what dies keeps services up; not restarting does not."""
    _, sup = run_recovery(seed=0)
    # The unsupervised baseline never finishes (the server stays dead), so
    # cap the horizon instead of waiting out the padded default.
    _, unsup = run_recovery(seed=0, supervise=False, until=60.0)
    assert sup["finished"] and not unsup["finished"]
    for name in ("viz-server", "controller"):
        a_sup = sup["recovery"]["services"][name]["availability"]
        a_unsup = unsup["recovery"]["services"][name]["availability"]
        assert a_sup > a_unsup, (name, a_sup, a_unsup)
    assert sup["recovery"]["services"]["viz-server"]["availability"] > 0.95


def test_warm_restart_beats_cold():
    """Checkpoint-resumed restarts ready faster than cold ones.

    A warm controller restores its monitor histories and answers the
    ready probe immediately; a cold one must refill its estimates from
    live traffic.  Restart *instants* are identical (checkpointing draws
    no RNG), so the MTTR gap isolates the resume path.
    """
    _, warm = run_recovery(seed=0, checkpoints=True)
    _, cold = run_recovery(seed=0, checkpoints=False)
    warm_ctl = [m for m in warm["recovery"]["mttr"] if m["service"] == "controller"]
    cold_ctl = [m for m in cold["recovery"]["mttr"] if m["service"] == "controller"]
    assert warm_ctl and cold_ctl
    assert all(m["warm"] for m in warm_ctl)
    assert all(not m["warm"] for m in cold_ctl)
    warm_mttr = sum(m["mttr"] for m in warm_ctl) / len(warm_ctl)
    cold_mttr = sum(m["mttr"] for m in cold_ctl) / len(cold_ctl)
    assert warm_mttr < cold_mttr, (warm_mttr, cold_mttr)


def test_recovery_headline_numbers(artifact_dir, interleaved_best):
    """Write BENCH_recovery.json for ``repro bench check``.

    The committed copy is the baseline; exact fields are deterministic
    guarantees, ``*_s``/``overhead`` floats are wall-clock bands.
    """
    _, sup = run_recovery(seed=0)
    _, sup2 = run_recovery(seed=0)
    _, unsup = run_recovery(seed=0, supervise=False, until=60.0)
    _, cold = run_recovery(seed=0, checkpoints=False)

    # Idle-supervision overhead on the chaos run: same workload, same
    # payload (asserted in bench_chaos), supervisor attached but never
    # needed.  Interleaved best-of damps scheduler noise.
    plain_s, supervised_s = interleaved_best(
        [lambda: run_chaos(seed=0), lambda: run_chaos(seed=0, supervise=True)],
        rounds=_ROUNDS, repeats=_REPEATS,
    )
    overhead_idle = supervised_s / plain_s - 1.0
    assert overhead_idle < _MAX_IDLE_OVERHEAD, (
        f"idle supervision costs {overhead_idle:.1%} "
        f"(limit {_MAX_IDLE_OVERHEAD:.0%})"
    )

    rec = sup["recovery"]
    warm_ctl = [m["mttr"] for m in rec["mttr"] if m["service"] == "controller"]
    cold_ctl = [
        m["mttr"] for m in cold["recovery"]["mttr"] if m["service"] == "controller"
    ]
    fo = sup["failover"]["server"]
    record = {
        "replay_identical": json.dumps(sup, sort_keys=True)
        == json.dumps(sup2, sort_keys=True),
        "finished": bool(sup["finished"]),
        "kills": rec["kills"],
        "restarts": rec["restarts"],
        "escalations": rec["escalations"],
        "availability_supervised": round(
            rec["services"]["viz-server"]["availability"], 4
        ),
        "availability_unsupervised": round(
            unsup["recovery"]["services"]["viz-server"]["availability"], 4
        ),
        "supervised_beats_unsupervised": rec["services"]["viz-server"][
            "availability"
        ]
        > unsup["recovery"]["services"]["viz-server"]["availability"],
        "warm_mttr_s": round(sum(warm_ctl) / len(warm_ctl), 3),
        "cold_mttr_s": round(sum(cold_ctl) / len(cold_ctl), 3),
        "warm_beats_cold": sum(warm_ctl) / len(warm_ctl)
        < sum(cold_ctl) / len(cold_ctl),
        "failover_takeovers": fo["takeovers"],
        "failover_handbacks": fo["handbacks"],
        "failover_latency_s": round(max(fo["latencies"]), 3),
        "failover_within_window": all(
            lat <= _WATCHDOG_WINDOW for lat in fo["latencies"]
        ),
        "brownout_windows": len(sup["overload"]["brownout_windows"]),
        "crowd_served": sup["overload"]["crowd_served"],
        "crowd_shed": sup["overload"]["crowd_shed"],
        "interactive_shed_rounds": sup["overload"]["interactive_shed_rounds"],
        "overhead_idle_supervision": round(overhead_idle, 3),
    }
    (artifact_dir / "BENCH_recovery.json").write_text(
        json.dumps(record, indent=1, sort_keys=True) + "\n"  # repro: allow[DET501] -- benchmark wall-time report, not sim state
    )
