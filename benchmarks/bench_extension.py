"""Extension benchmark: adaptation along the memory dimension.

Not a paper figure — the paper fixes memory — but the natural completion
of its framework: the sandbox's resident-set limits drive a working-set
adaptation in the memory-bound grid application.
"""


from repro.experiments import run_memory_adaptation


def test_memory_adaptation(benchmark, save_figure):
    figure, outcomes = benchmark.pedantic(
        run_memory_adaptation, rounds=1, iterations=1
    )
    save_figure(figure, "ext_memory")
    runs = outcomes["runs"]
    # Ample memory: the scheduler starts with the largest tile.
    assert outcomes["initial_config"].tile == 512
    # The drop triggers a re-tile to a smaller working set.
    assert runs["adaptive"]["switches"], "no adaptation happened"
    _, old, new = runs["adaptive"]["switches"][0]
    assert old.tile == 512
    assert new.tile < old.tile
    # Adaptation pays: fewer faults and less total time than static.
    assert runs["adaptive"]["faults"] < runs["static"]["faults"]
    assert runs["adaptive"]["elapsed"] < runs["static"]["elapsed"] * 0.9
