"""Benchmark for the chaos experiment: adaptation under injected faults.

Beyond the usual figure artifact, this benchmark enforces the fault
subsystem's two headline guarantees:

* **Determinism** — two runs with the same seed produce a byte-identical
  trajectory payload (written to ``benchmarks/out/chaos.json``).
* **Recovery** — the controller survives every injected crash, partition,
  and lossy spell: the workload completes, no peer stays marked lost, and
  the final configuration is the one adaptation should settle on.
"""

import json

from repro.experiments import run_chaos


def _run(seed=0):
    result, payload = run_chaos(seed=seed)
    return result, payload


def test_chaos_trajectory(benchmark, save_figure, artifact_dir):
    result, payload = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_figure(result, "chaos_figure")

    encoded = json.dumps(payload, sort_keys=True, indent=1)
    (artifact_dir / "chaos.json").write_text(encoded + "\n")

    kinds = [e["kind"] for e in payload["events"]]

    # The fault schedule actually fired, in both directions.
    actions = [entry["action"] for entry in payload["injections"]]
    assert "crash" in actions and "crash-recovered" in actions
    assert "partition" in actions and "partition-recovered" in actions
    assert payload["network"]["lost"] > 0, "lossy window dropped nothing"
    assert payload["network"]["delayed"] > 0, "delay window delayed nothing"
    assert payload["network"]["parked"] > 0, "queue-mode faults parked nothing"

    # The watchdog noticed the dead/partitioned server and its recovery,
    # and re-selected over the degraded resource point.
    assert kinds.count("peer-lost") >= 2, "crash and partition both silence the peer"
    assert kinds.count("peer-recovered") == kinds.count("peer-lost")
    assert "degraded" in kinds
    # A steering handshake posted while the client was stalled was
    # abandoned by the ack timeout instead of hanging forever.
    assert "steering-timeout" in kinds

    # Recovery: the workload finished, adaptation switched down under the
    # bandwidth drop and back up after the restore, and nobody is still
    # considered dead at the end.
    assert payload["lost_peers_at_end"] == []
    assert len(payload["image_times"]) == payload["n_images"]
    switches = [(s["from"], s["to"]) for s in payload["switches"]]
    assert ("c=lzw,dR=320,l=4", "c=bzip2,dR=320,l=4") in switches
    assert ("c=bzip2,dR=320,l=4", "c=lzw,dR=320,l=4") in switches
    assert payload["final_config"] == "c=lzw,dR=320,l=4"


def test_chaos_deterministic_replay():
    """Same seed, same spec => byte-identical chaos.json payload."""
    _, first = _run(seed=0)
    _, second = _run(seed=0)
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    # A different seed perturbs at least the randomized message faults.
    _, other = _run(seed=7)
    assert json.dumps(first, sort_keys=True) != json.dumps(other, sort_keys=True)


def test_chaos_supervision_transparent():
    """An attached-but-idle Supervisor must not perturb the trajectory.

    ``supervise=True`` registers the server under a Supervisor (safe-point
    checkpoints and all) but the chaos plan kills nothing, so nothing
    restarts: the payload must be byte-identical to the unsupervised run,
    and the supervised run must itself replay byte-identically and stay
    race-detector clean.
    """
    _, plain = _run(seed=0)
    _, supervised = run_chaos(seed=0, supervise=True)
    assert json.dumps(supervised, sort_keys=True) == json.dumps(
        plain, sort_keys=True
    )

    _, supervised2 = run_chaos(seed=0, supervise=True)
    assert json.dumps(supervised, sort_keys=True) == json.dumps(
        supervised2, sort_keys=True
    )

    _, raced = run_chaos(seed=0, supervise=True, detect_races=True)
    assert raced["races"] == [], raced["races"]


def test_chaos_race_clean():
    """The seeded run has no tie-order races on shared runtime state.

    The race detector watches every host mailbox and both exchanges'
    estimate tables; an empty report means no same-timestamp conflicting
    access pair is ordered merely by the event queue's FIFO tiebreak —
    the trajectory would survive a reshuffling of same-time scheduling.
    """
    _, payload = run_chaos(seed=0, detect_races=True)
    assert payload["races"] == [], payload["races"]

    # Instrumentation must not perturb the trajectory itself.
    _, baseline = _run(seed=0)
    payload.pop("races")
    assert json.dumps(payload, sort_keys=True) == json.dumps(
        baseline, sort_keys=True
    )


def test_chaos_tiebreak_invisible():
    """Installing a tiebreak policy with no directives is byte-invisible.

    The explorer replays chaos under flipped same-instant orders; its
    baseline anchor is that the identity policy (and an empty
    ``DemoteTiebreak``) reproduces the default FIFO payload bit for bit.
    """
    from repro.analysis.schedule import DemoteTiebreak, FifoTiebreak

    _, baseline = _run(seed=0)
    _, fifo = run_chaos(seed=0, tiebreak=FifoTiebreak())
    _, empty = run_chaos(seed=0, tiebreak=DemoteTiebreak({}))
    assert json.dumps(fifo, sort_keys=True) == json.dumps(
        baseline, sort_keys=True
    )
    assert json.dumps(empty, sort_keys=True) == json.dumps(
        baseline, sort_keys=True
    )
