"""Benchmark for the sweep engine: parallel speedup and cache economics.

Three guarantees the execution subsystem advertises (docs/parallel.md):

* **Byte-identical parallelism** — profiling the fig3 toy grid through
  ``SweepEngine(jobs=N)`` produces a database whose serialized bytes
  match the serial loop exactly, regardless of worker completion order.
* **Real speedup** — on a machine with >= 4 cores, 4 workers finish the
  grid at least 2x faster than the serial loop (spawn cost included).
* **Cache economics** — a second invocation against a warm store is
  served >= 95 % from cache and still yields identical bytes.

Numbers are recorded to ``benchmarks/out/BENCH_exec.json`` so CI can
archive them; the speedup assertion is gated on core count because the
other two guarantees hold on any machine.
"""

import json
import os

# Wall-clock measurement of the host process, not simulated behavior:
# speedup is a property of real elapsed time.
from time import perf_counter  # repro: allow[DET101] -- benchmark harness timing

from repro.apps import make_toy_app
from repro.exec import AppSpec, ResultStore, SweepEngine
from repro.profiling import ProfilingDriver, ResourceDimension

# Heavier than the default toy app so each cell is long enough for the
# pool to amortize worker spawn; 3 configs x 4 cpu levels = 12 cells.
_TOTAL_WORK = 120000.0
_JOBS = 4
_MIN_SPEEDUP = 2.0
_MIN_HIT_RATE = 0.95
_SOURCE = "bench-exec-pinned"


def _driver():
    app = make_toy_app(total_work=_TOTAL_WORK)
    dims = [
        ResourceDimension("node.cpu", (0.25, 0.5, 0.75, 1.0), lo=0.01, hi=1.0)
    ]
    spec = AppSpec(
        "repro.apps:make_toy_app", kwargs={"total_work": _TOTAL_WORK}
    )
    # scale=4 at share 0.25 runs 4266 virtual seconds; lift the cap.
    return ProfilingDriver(
        app, dims, seed=11, app_spec=spec, max_run_time=20000.0
    )


def _db_bytes(db, tmp_path, name):
    path = tmp_path / name
    db.save(path)
    return path.read_bytes()


def _hit_rate(engine):
    cached = engine.metrics.counter("exec.jobs.cached").value
    ran = engine.metrics.counter("exec.jobs.run").value
    return cached / max(cached + ran, 1)


def test_parallel_fig3_profiling(tmp_path, artifact_dir):
    cores = os.cpu_count() or 1

    t0 = perf_counter()  # repro: allow[DET101] -- benchmark harness timing
    serial_db = _driver().profile()
    serial_s = perf_counter() - t0  # repro: allow[DET101] -- benchmark harness timing

    store = ResultStore(tmp_path / "cache")
    engine = SweepEngine(jobs=_JOBS, store=store, source=_SOURCE)
    t0 = perf_counter()  # repro: allow[DET101] -- benchmark harness timing
    parallel_db = _driver().profile(engine=engine)
    parallel_s = perf_counter() - t0  # repro: allow[DET101] -- benchmark harness timing

    serial_bytes = _db_bytes(serial_db, tmp_path, "serial.json")
    parallel_bytes = _db_bytes(parallel_db, tmp_path, "parallel.json")
    assert serial_bytes == parallel_bytes, (
        "parallel profiling diverged from the serial loop"
    )

    # Warm-store rerun: everything served from cache, same bytes.
    engine2 = SweepEngine(jobs=1, store=store, source=_SOURCE)
    t0 = perf_counter()  # repro: allow[DET101] -- benchmark harness timing
    cached_db = _driver().profile(engine=engine2)
    cached_s = perf_counter() - t0  # repro: allow[DET101] -- benchmark harness timing
    assert _db_bytes(cached_db, tmp_path, "cached.json") == serial_bytes
    hit_rate = _hit_rate(engine2)
    assert hit_rate >= _MIN_HIT_RATE, (
        f"warm-store hit rate {hit_rate:.1%} below {_MIN_HIT_RATE:.0%}"
    )

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    record = {
        "cells": len(serial_db),
        "jobs": _JOBS,
        "cpu_count": cores,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "cached_s": round(cached_s, 3),
        "speedup": round(speedup, 3),
        "speedup_asserted": cores >= _JOBS,
        "cache_hit_rate": round(hit_rate, 4),
        "bytes_identical": True,
    }
    (artifact_dir / "BENCH_exec.json").write_text(
        json.dumps(record, indent=1, sort_keys=True) + "\n"
    )

    if cores >= _JOBS:
        assert speedup >= _MIN_SPEEDUP, (
            f"speedup {speedup:.2f}x below {_MIN_SPEEDUP:.1f}x "
            f"(serial {serial_s:.2f}s, parallel {parallel_s:.2f}s, "
            f"{_JOBS} workers on {cores} cores)"
        )
