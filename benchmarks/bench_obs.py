"""Benchmark for the observability layer: overhead and non-perturbation.

Three guarantees the observability subsystem advertises
(docs/observability.md):

* **Zero perturbation (tracing)** — a traced seeded run's simulation
  outcome is byte-identical to the untraced run: the recorder is
  strictly passive (no simulator events, no RNG draws, no wall-clock
  reads).
* **Zero perturbation (accounting)** — the same holds with the
  :class:`~repro.obs.UsageAccountant` attached: usage accounting
  piggybacks on the step hook and the fluid-share work taps, so it
  observes every served-work delta without scheduling anything.
* **Bounded overhead** — tracing alone costs < 15 % wall clock over the
  bare run, and the *full* observability stack (tracing + usage
  accounting) costs < 30 % (best-of-N to damp scheduler noise).  The
  bounds are calibrated for the shared gc-isolated harness
  (``interleaved_best`` in ``conftest.py``): collecting between samples
  stops the instrumented variants' garbage from being collected inside
  the *bare* variant's window, which the pre-harness numbers quietly
  benefited from.

Headline numbers land in ``benchmarks/out/BENCH_obs.json``; the
committed copy is the baseline ``repro bench check`` compares against.
"""

import json

from repro.experiments import run_chaos
from repro.obs import TraceRecorder, UsageAccountant, adaptation_chains, to_jsonl

_ROUNDS = 10
_REPEATS = 2  # runs per timing sample; amortizes timer/scheduler noise
_MAX_OVERHEAD = 0.15
_MAX_TOTAL_OVERHEAD = 0.30


def test_traced_run_byte_identical(artifact_dir):
    """Tracing must not perturb the simulation outcome."""
    _, untraced = run_chaos(seed=0)
    recorder = TraceRecorder()
    _, traced = run_chaos(seed=0, recorder=recorder)
    assert json.dumps(traced, sort_keys=True) == json.dumps(
        untraced, sort_keys=True
    )
    # And the trace itself is worth shipping: complete causal chains.
    chains = adaptation_chains(recorder.records)
    assert chains, "traced chaos run produced no config.switch chain"
    (artifact_dir / "chaos_trace.jsonl").write_text(to_jsonl(recorder.records))
    (artifact_dir / "chaos_metrics.json").write_text(
        json.dumps(recorder.metrics.snapshot(), indent=1, sort_keys=True) + "\n"
    )


def test_usage_accounted_run_byte_identical():
    """Usage accounting must not perturb the simulation outcome."""
    _, bare = run_chaos(seed=0)
    usage = UsageAccountant()
    _, accounted = run_chaos(seed=0, usage=usage)
    assert json.dumps(accounted, sort_keys=True) == json.dumps(
        bare, sort_keys=True
    )
    # And the account itself is non-trivial: resources saw work, the
    # adaptation left config marks behind.
    summary = usage.summary()
    served = [r for r in summary["resources"].values() if r["served"] > 0]
    assert served, "usage accounting recorded no served work"
    assert len(summary["config_marks"]) >= 2, (
        "chaos run should mark at least the initial config and one switch"
    )


def test_obs_overhead_bounded(artifact_dir, interleaved_best):
    """Tracing < 15 %; tracing + usage accounting < 30 % (best-of-N)."""

    def bare():
        return run_chaos(seed=0)

    def traced():
        return run_chaos(seed=0, recorder=TraceRecorder())

    def full():
        recorder = TraceRecorder()
        return run_chaos(
            seed=0,
            recorder=recorder,
            usage=UsageAccountant(metrics=recorder.metrics),
        )

    base, cost, total = interleaved_best(
        [bare, traced, full], rounds=_ROUNDS, repeats=_REPEATS
    )
    overhead = (cost - base) / base
    total_overhead = (total - base) / base

    (artifact_dir / "BENCH_obs.json").write_text(
        json.dumps(  # repro: allow[DET501] -- benchmark wall-time report, not sim state
            {
                "bare_s": round(base, 3),
                "traced_s": round(cost, 3),
                "full_s": round(total, 3),
                "overhead_traced": round(max(overhead, 0.0), 4),
                "overhead_full": round(max(total_overhead, 0.0), 4),
                "bytes_identical": True,
                "rounds": _ROUNDS,
            },
            indent=1,
            sort_keys=True,
        )
        + "\n"
    )

    assert overhead < _MAX_OVERHEAD, (
        f"tracing overhead {overhead:.1%} exceeds {_MAX_OVERHEAD:.0%} "
        f"(untraced best {base:.3f}s, traced best {cost:.3f}s)"
    )
    assert total_overhead < _MAX_TOTAL_OVERHEAD, (
        f"tracing+accounting overhead {total_overhead:.1%} exceeds "
        f"{_MAX_TOTAL_OVERHEAD:.0%} (bare best {base:.3f}s, "
        f"full best {total:.3f}s)"
    )
