"""Benchmark for the observability layer: overhead and non-perturbation.

Two guarantees the tracing subsystem advertises (docs/observability.md):

* **Zero perturbation** — a traced seeded run's simulation outcome is
  byte-identical to the untraced run: the recorder is strictly passive
  (no simulator events, no RNG draws, no wall-clock reads).
* **Bounded overhead** — tracing a chaos run costs < 10 % wall clock
  over the untraced run (best-of-N to damp scheduler noise).
"""

import json

# Wall-clock measurement of the host process, not simulated behavior:
# the tracing-overhead guard needs a real timer.
from time import perf_counter  # repro: allow[DET101] -- benchmark harness timing

from repro.experiments import run_chaos
from repro.obs import TraceRecorder, adaptation_chains, to_jsonl

_ROUNDS = 5
_MAX_OVERHEAD = 0.10


def _best_of(fn, rounds=_ROUNDS):
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = perf_counter()  # repro: allow[DET101] -- benchmark harness timing
        result = fn()
        best = min(best, perf_counter() - t0)  # repro: allow[DET101] -- benchmark harness timing
    return best, result


def test_traced_run_byte_identical(artifact_dir):
    """Tracing must not perturb the simulation outcome."""
    _, untraced = run_chaos(seed=0)
    recorder = TraceRecorder()
    _, traced = run_chaos(seed=0, recorder=recorder)
    assert json.dumps(traced, sort_keys=True) == json.dumps(
        untraced, sort_keys=True
    )
    # And the trace itself is worth shipping: complete causal chains.
    chains = adaptation_chains(recorder.records)
    assert chains, "traced chaos run produced no config.switch chain"
    (artifact_dir / "chaos_trace.jsonl").write_text(to_jsonl(recorder.records))
    (artifact_dir / "chaos_metrics.json").write_text(
        json.dumps(recorder.metrics.snapshot(), indent=1, sort_keys=True) + "\n"
    )


def test_tracing_overhead_bounded():
    """Best-of-N wall-clock overhead of tracing stays under 10 %."""
    # Warm-up: JIT-free Python, but first run pays import/alloc caches.
    run_chaos(seed=0)
    base, _ = _best_of(lambda: run_chaos(seed=0))

    def traced():
        return run_chaos(seed=0, recorder=TraceRecorder())

    cost, _ = _best_of(traced)
    overhead = (cost - base) / base
    assert overhead < _MAX_OVERHEAD, (
        f"tracing overhead {overhead:.1%} exceeds {_MAX_OVERHEAD:.0%} "
        f"(untraced best {base:.3f}s, traced best {cost:.3f}s)"
    )
