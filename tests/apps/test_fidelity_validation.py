"""Validation of the analytic image model against ground truth.

DESIGN.md's substitution table claims the analytic byte-count model is
"calibrated by the real one".  These tests run the *entire application*
under both fidelities and compare the measured QoS, quantifying that
substitution.
"""

import pytest

from repro.apps.visualization import VizWorkload, make_viz_app
from repro.sandbox import ResourceLimits, Testbed
from repro.tunable import Configuration


def run_fidelity(fidelity, codec, bw=20e3, side=128, levels=3, dR=32):
    app = make_viz_app(dr_domain=(dR,), level_domain=(levels,),
                       codec_domain=("none", "lzw", "bzip2"))
    tb = Testbed(host_specs=app.env.host_specs(), link_specs=app.env.link_specs())
    wl = VizWorkload(n_images=2, image_side=side, levels=levels, fidelity=fidelity)
    rt = app.instantiate(
        tb,
        Configuration({"dR": dR, "c": codec, "l": levels}),
        limits={"client": ResourceLimits(net_bw=bw)},
        workload=wl,
    )
    tb.run(until=5000)
    assert rt.finished.triggered
    return rt.qos.snapshot()


def test_uncompressed_fidelities_agree_closely():
    """With no codec, only geometry matters: ≤6% disagreement."""
    analytic = run_fidelity("analytic", "none")
    real = run_fidelity("real", "none")
    assert real["transmit_time"] == pytest.approx(
        analytic["transmit_time"], rel=0.06
    )
    assert real["response_time"] == pytest.approx(
        analytic["response_time"], rel=0.06
    )


def test_lzw_fidelities_agree_within_chunking_bias():
    """With LZW, the analytic ratio (calibrated on a long stream) is
    optimistic for small per-ring chunks (cold dictionary), so the real
    run is slower — but bounded, and in a known direction."""
    analytic = run_fidelity("analytic", "lzw")
    real = run_fidelity("real", "lzw")
    assert real["transmit_time"] >= analytic["transmit_time"] * 0.95
    assert real["transmit_time"] <= analytic["transmit_time"] * 1.6


def test_fidelity_preserves_codec_ordering():
    """The decision-relevant fact — which codec transmits less on a thin
    pipe — is the same under both fidelities."""
    outcomes = {}
    for fidelity in ("analytic", "real"):
        lzw = run_fidelity(fidelity, "lzw")["transmit_time"]
        none = run_fidelity(fidelity, "none")["transmit_time"]
        outcomes[fidelity] = lzw < none
    assert outcomes["analytic"] == outcomes["real"] is True
