"""Tests for the memory-bound extension application."""


from repro.apps import MemWorkload, make_membound_app
from repro.profiling import ProfilingDriver, ResourceDimension, ResourcePoint
from repro.runtime import Objective, ResourceScheduler, UserPreference
from repro.sandbox import ResourceLimits, Testbed
from repro.tunable import Configuration

#: Disk-backed page-fault cost (2 ms) — makes residency matter.
FAULT_COST = 2e-3


def run_mem(tile, mem_pages=None, fault_cost=FAULT_COST):
    app = make_membound_app()
    tb = Testbed(host_specs=app.env.host_specs())
    limits = {}
    if mem_pages is not None:
        limits["node"] = ResourceLimits(mem_pages=mem_pages)
    rt = app.instantiate(
        tb,
        Configuration({"tile": tile}),
        limits=limits,
        workload=MemWorkload(),
        sandbox_kwargs={"fault_cost": fault_cost},
    )
    tb.run(until=3600)
    assert rt.finished.triggered
    return rt


def test_unconstrained_prefers_large_tiles():
    """Without memory pressure, bigger tiles = less recomputation = faster."""
    elapsed = {t: run_mem(t).qos.get("elapsed") for t in (32, 128, 512)}
    assert elapsed[512] < elapsed[128] < elapsed[32]
    # And no faults at all (everything stays resident).
    assert run_mem(512).qos.get("faults") == 0.0


def test_memory_pressure_flips_the_preference():
    """Under a tight resident limit, the huge tile thrashes."""
    t512 = run_mem(512, mem_pages=200)
    t128 = run_mem(128, mem_pages=200)
    assert t512.qos.get("faults") > t128.qos.get("faults")
    assert t128.qos.get("elapsed") < t512.qos.get("elapsed")


def test_fault_counts_match_lru_analysis():
    """tile <= limit: one cold fault per page per sweep; tile > limit:
    every visit faults (sequential LRU sweep)."""
    small = run_mem(32, mem_pages=200)
    # 512 data pages x 4 sweeps, faulting once per page per sweep (tiles
    # evict each other between sweeps but are warm within a tile pass).
    assert small.qos.get("faults") == 512 * 4
    big = run_mem(512, mem_pages=200)
    # Both visits of the 512-page tile fault every time: 2 x 512 x 4.
    assert big.qos.get("faults") == 2 * 512 * 4


def test_fault_log_per_sweep():
    rt = run_mem(128, mem_pages=200)
    wl = rt.workload
    assert len(wl.fault_log) == 4
    assert all(f == 512 for _, f in wl.fault_log)


def test_profiling_over_memory_dimension():
    """The framework handles node.memory as a first-class dimension."""
    app = make_membound_app()
    dims = [ResourceDimension("node.memory", (150, 600, 4000), lo=1)]
    driver = ProfilingDriver(
        app, dims, workload_factory=lambda c, p, s: MemWorkload()
    )
    db = driver.profile()
    assert len(db) == 9  # 3 tiles x 3 memory levels
    # Scheduler picks large tiles when memory is plentiful, smaller when
    # it is scarce.
    sched = ResourceScheduler(db, UserPreference.single(Objective("elapsed")))
    rich = sched.select(ResourcePoint({"node.memory": 4000}))
    assert rich.config.tile == 512


def test_default_fault_cost_keeps_soft_faults_cheap():
    """With the default (soft) fault cost, faults barely matter."""
    soft = run_mem(512, mem_pages=200, fault_cost=5e-5)
    hard = run_mem(512, mem_pages=200, fault_cost=FAULT_COST)
    assert soft.qos.get("elapsed") < hard.qos.get("elapsed") / 4
