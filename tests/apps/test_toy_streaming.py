"""Tests for the toy and streaming applications."""

import pytest

from repro.apps import StreamWorkload, make_streaming_app, make_toy_app
from repro.sandbox import LimiterMode, ResourceLimits, Testbed
from repro.tunable import Configuration


# -------------------------------------------------------------------- toy


def run_toy(share=None, mode=LimiterMode.IDEAL, scale=1.0, speed=450.0):
    app = make_toy_app(cpu_speed=speed)
    tb = Testbed(host_specs=app.env.host_specs(), mode=mode)
    limits = {}
    if share is not None:
        limits["node"] = ResourceLimits(cpu_share=share)
    rt = app.instantiate(tb, Configuration({"scale": scale}), limits=limits)
    tb.run(until=3600)
    assert rt.finished.triggered
    return rt.qos.get("elapsed")


def test_toy_baseline_10s():
    assert run_toy() == pytest.approx(10.0, rel=1e-6)


def test_toy_time_scales_inversely_with_share():
    assert run_toy(share=0.5) == pytest.approx(20.0, rel=1e-3)
    assert run_toy(share=0.25) == pytest.approx(40.0, rel=1e-3)


def test_toy_scale_parameter():
    assert run_toy(scale=2.0) == pytest.approx(20.0, rel=1e-6)


def test_toy_quantum_mode_close_to_ideal():
    ideal = run_toy(share=0.5)
    quantum = run_toy(share=0.5, mode=LimiterMode.QUANTUM)
    assert quantum == pytest.approx(ideal, rel=0.05)


def test_toy_emulates_slower_machine_with_clock_ratio():
    """Fig 4a: PII-450 sandboxed at 333/450 share ~ a physical PII-333."""
    physical = run_toy(speed=333.0)
    emulated = run_toy(speed=450.0, share=333.0 / 450.0)
    assert emulated == pytest.approx(physical, rel=1e-3)


# -------------------------------------------------------------- streaming


def run_stream(config, limits=None, duration=10.0):
    app = make_streaming_app()
    tb = Testbed(host_specs=app.env.host_specs(), link_specs=app.env.link_specs())
    wl = StreamWorkload(duration=duration)
    rt = app.instantiate(tb, Configuration(config), limits=limits or {}, workload=wl)
    tb.run(until=3600)
    assert rt.finished.triggered
    return rt, wl


def test_stream_delivers_near_nominal_fps_unconstrained():
    rt, wl = run_stream({"fps": 15, "quality": "medium", "c": "none"})
    assert rt.qos.get("fps_delivered") == pytest.approx(15.0, rel=0.1)
    assert rt.qos.get("frame_lag") < 0.1
    assert rt.qos.get("quality_bytes") == pytest.approx(100_000.0)


def test_stream_bandwidth_starvation_raises_lag():
    nominal_wire = 100_000.0 * 15  # bytes/s needed uncompressed
    rt, _ = run_stream(
        {"fps": 15, "quality": "medium", "c": "none"},
        limits={"server": ResourceLimits(net_bw=nominal_wire / 3)},
    )
    # The stream cannot keep up: delivered fps collapses.
    assert rt.qos.get("fps_delivered") < 7.0


def test_stream_compression_recovers_fps_on_thin_pipe():
    thin = {"server": ResourceLimits(net_bw=100_000.0 * 15 / 1.6)}
    raw_rt, _ = run_stream({"fps": 15, "quality": "medium", "c": "none"}, limits=thin)
    lzw_rt, _ = run_stream({"fps": 15, "quality": "medium", "c": "lzw"}, limits=thin)
    # LZW (ratio 1.8) fits through the 1/1.6-rate pipe; raw does not.
    assert lzw_rt.qos.get("fps_delivered") > raw_rt.qos.get("fps_delivered") * 1.2


def test_stream_quality_knob_trades_bytes():
    lo, _ = run_stream({"fps": 10, "quality": "low", "c": "none"}, duration=5.0)
    hi, _ = run_stream({"fps": 10, "quality": "high", "c": "none"}, duration=5.0)
    assert hi.qos.get("quality_bytes") > lo.qos.get("quality_bytes") * 10


def test_stream_frame_log_ordered():
    _, wl = run_stream({"fps": 30, "quality": "low", "c": "none"}, duration=3.0)
    sent = [s for s, _, _ in wl.frame_log]
    assert sent == sorted(sent)
    ids = [i for _, _, i in wl.frame_log]
    assert ids == sorted(ids)
