"""Tests for user-interaction traces in the visualization client."""

import pytest

from repro.apps.visualization import (
    VizWorkload,
    make_viz_app,
    random_walk_user,
    scripted_moves,
    static_user,
)
from repro.sandbox import Testbed
from repro.tunable import Configuration


def run_with(interaction, n_images=1, dR=320):
    app = make_viz_app()
    tb = Testbed(host_specs=app.env.host_specs(), link_specs=app.env.link_specs())
    wl = VizWorkload(n_images=n_images, interaction=interaction)
    rt = app.instantiate(
        tb, Configuration({"dR": dR, "c": "lzw", "l": 4}), workload=wl
    )
    tb.run(until=5000)
    assert rt.finished.triggered
    return rt, wl


def test_static_user_changes_nothing():
    _, wl_static = run_with(static_user())
    _, wl_none = run_with(None)
    assert len(wl_static.round_times) == len(wl_none.round_times)


def test_scripted_move_restarts_progressive_transmission():
    trace = scripted_moves([(0, 2, 512, 512)])
    _, wl = run_with(trace)
    # The restart adds rounds beyond the nominal 4 (1024/320 -> 4).
    assert len(wl.round_times) > 4


def test_scripted_move_only_fires_at_its_slot():
    fired = []

    def wrapped(image_id, seq, x, y):
        result = scripted_moves([(0, 2, 100, 100)])(image_id, seq, x, y)
        if result is not None:
            fired.append((image_id, seq))
        return result

    run_with(wrapped)
    assert fired == [(0, 2)]


def test_random_walk_user_is_seeded_and_bounded():
    _, wl_a = run_with(random_walk_user(side=2048, seed=4, move_probability=0.5))
    _, wl_b = run_with(random_walk_user(side=2048, seed=4, move_probability=0.5))
    assert len(wl_a.round_times) == len(wl_b.round_times)
    # Moves happened (more rounds than the static 4) but stayed bounded
    # (max_moves_per_image=2 keeps the download finite).
    assert 4 < len(wl_a.round_times) <= 4 + 2 * 4  # restarts add <= 4 rounds each


def test_random_walk_different_seed_differs():
    _, wl_a = run_with(random_walk_user(side=2048, seed=1, move_probability=0.5))
    _, wl_b = run_with(random_walk_user(side=2048, seed=2, move_probability=0.5))
    # Almost surely different round counts or timings.
    assert (
        len(wl_a.round_times) != len(wl_b.round_times)
        or wl_a.round_times != wl_b.round_times
    )


def test_random_walk_validation():
    with pytest.raises(ValueError):
        random_walk_user(side=2048, move_probability=1.5)


def test_interaction_increases_total_transmission_time():
    rt_static, _ = run_with(None)
    rt_moving, _ = run_with(random_walk_user(side=2048, seed=9, move_probability=0.6))
    assert (
        rt_moving.qos.get("transmit_time") > rt_static.qos.get("transmit_time")
    )
