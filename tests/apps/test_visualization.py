"""Tests for the active visualization application."""

import pytest

from repro.apps.visualization import (
    AnalyticImageModel,
    RealImageModel,
    VizCosts,
    VizWorkload,
    make_viz_app,
    measured_codec_ratios,
)
from repro.sandbox import ResourceLimits, Testbed
from repro.tunable import Configuration, PendingChange


def cfg(dR=320, c="lzw", l=4):
    return Configuration({"dR": dR, "c": c, "l": l})


def run_viz(config, limits=None, workload=None, until=5000.0, app=None):
    app = app or make_viz_app()
    tb = Testbed(host_specs=app.env.host_specs(), link_specs=app.env.link_specs())
    wl = workload or VizWorkload(n_images=2)
    rt = app.instantiate(tb, config, limits=limits or {}, workload=wl)
    tb.run(until=until)
    assert rt.finished.triggered, "client did not finish"
    return rt, wl, tb


# ------------------------------------------------------------ image models


def test_analytic_level_sides():
    m = AnalyticImageModel(side=2048, levels=4)
    assert m.level_side(4) == 2048
    assert m.level_side(3) == 1024
    assert m.level_side(0) == 128
    with pytest.raises(ValueError):
        m.level_side(5)


def test_analytic_full_image_bytes_include_pyramid_overhead():
    m = AnalyticImageModel(side=2048, levels=4)
    raw = m.image_raw_bytes(4)
    base = 2048.0**2
    # Pyramid sum: base * (1 + 1/4 + ... + 1/256)
    assert raw == pytest.approx(base * sum(0.25**k for k in range(5)))


def test_analytic_rings_partition_image():
    m = AnalyticImageModel(side=512, levels=3)
    total = m.image_raw_bytes(3)
    x = y = 256
    pieces = sum(
        m.ring_raw_bytes(3, x, y, r, r + 64) for r in range(0, 256, 64)
    )
    assert pieces == pytest.approx(total)


def test_analytic_ring_clipping_off_center():
    m = AnalyticImageModel(side=512, levels=3)
    corner = m.ring_raw_bytes(3, 0, 0, 0, 64)
    center = m.ring_raw_bytes(3, 256, 256, 0, 64)
    # A corner fovea's box is clipped to a quarter.
    assert corner == pytest.approx(center / 4)


def test_analytic_compressed_uses_measured_ratios():
    m = AnalyticImageModel(side=512, levels=3)
    ratios = measured_codec_ratios()
    assert m.compressed_bytes("lzw", 1000.0) == pytest.approx(1000.0 / ratios["lzw"])
    with pytest.raises(KeyError):
        m.compressed_bytes("zstd", 1.0)


def test_analytic_validation():
    with pytest.raises(ValueError):
        AnalyticImageModel(side=0, levels=2)


def test_real_model_bytes_close_to_analytic():
    real = RealImageModel(side=128, levels=3, seed=1)
    analytic = AnalyticImageModel(side=128, levels=3)
    r_real = real.image_raw_bytes(3)
    r_analytic = analytic.image_raw_bytes(3)
    assert r_real == pytest.approx(r_analytic, rel=0.05)


def test_real_model_compression_is_real():
    real = RealImageModel(side=64, levels=2, seed=2)
    raw = real.ring_raw_bytes(2, 32, 32, 0, 32)
    comp = real.compressed_bytes("lzw", raw, level=2, x=32, y=32, r0=0, r1=32)
    assert 0 < comp < raw


def test_measured_ratios_sane():
    ratios = measured_codec_ratios()
    assert ratios["none"] == 1.0
    assert 1.5 < ratios["lzw"] < 3.5
    assert ratios["bzip2"] > ratios["lzw"]


# ----------------------------------------------------------------- the app


def test_viz_runs_and_reports_metrics():
    rt, wl, _ = run_viz(cfg())
    snap = rt.qos.snapshot()
    assert set(snap) == {"transmit_time", "response_time", "resolution"}
    assert snap["resolution"] == 4.0
    assert len(wl.image_times) == 2
    # Both images identical -> identical durations.
    assert wl.image_times[0][1] == pytest.approx(wl.image_times[1][1])


def test_viz_round_count_matches_fovea_size():
    _, wl320, _ = run_viz(cfg(dR=320), workload=VizWorkload(n_images=1))
    _, wl80, _ = run_viz(cfg(dR=80), workload=VizWorkload(n_images=1))
    assert len(wl320.round_times) == 4   # 1024 / 320 -> 4 rounds
    assert len(wl80.round_times) == 13   # 1024 / 80 -> 13 rounds


def test_viz_fovea_tradeoff_directions():
    """Fig 5: larger fovea -> shorter transmission, longer response.

    The transmission-time direction comes from per-round costs (request
    round trips, server pyramid extraction), so realistic per-round
    overheads are part of the scenario.
    """
    costs = VizCosts(client_round_overhead=9.0, server_round_overhead=20.0)
    rt320, _, _ = run_viz(
        cfg(dR=320), limits=_bw(1e6), workload=VizWorkload(n_images=2, costs=costs)
    )
    rt80, _, _ = run_viz(
        cfg(dR=80), limits=_bw(1e6), workload=VizWorkload(n_images=2, costs=costs)
    )
    assert rt320.qos.get("transmit_time") < rt80.qos.get("transmit_time")
    assert rt320.qos.get("response_time") > rt80.qos.get("response_time")


def _bw(bw):
    return {"client": ResourceLimits(net_bw=bw)}


def test_viz_resolution_scales_bytes_and_time():
    """Fig 6b: level 3 transmits ~4x less data than level 4."""
    rt4, _, _ = run_viz(cfg(l=4), limits=_bw(500e3))
    rt3, _, _ = run_viz(cfg(l=3), limits=_bw(500e3))
    ratio = rt4.qos.get("transmit_time") / rt3.qos.get("transmit_time")
    assert 3.0 < ratio < 5.0


def test_viz_cpu_share_slows_transmission():
    rt_full, _, _ = run_viz(cfg())
    rt_slow, _, _ = run_viz(
        cfg(), limits={"client": ResourceLimits(cpu_share=0.2)}
    )
    assert rt_slow.qos.get("transmit_time") > rt_full.qos.get("transmit_time")


def test_viz_compression_crossover():
    """Fig 6a: LZW wins at high bandwidth, bzip2 at low bandwidth."""
    lzw_hi, _, _ = run_viz(cfg(c="lzw"), limits=_bw(500e3))
    bz_hi, _, _ = run_viz(cfg(c="bzip2"), limits=_bw(500e3))
    lzw_lo, _, _ = run_viz(cfg(c="lzw"), limits=_bw(50e3))
    bz_lo, _, _ = run_viz(cfg(c="bzip2"), limits=_bw(50e3))
    assert lzw_hi.qos.get("transmit_time") < bz_hi.qos.get("transmit_time")
    assert bz_lo.qos.get("transmit_time") < lzw_lo.qos.get("transmit_time")


def test_viz_reconfiguration_midrun_switches_codec():
    """A pending change applies at a round boundary and notifies the server."""
    app = make_viz_app()
    tb = Testbed(host_specs=app.env.host_specs(), link_specs=app.env.link_specs())
    wl = VizWorkload(n_images=3)
    rt = app.instantiate(tb, cfg(c="lzw"), limits=_bw(50e3), workload=wl)
    applied = []

    def reconfigure():
        yield tb.sim.timeout(10.0)
        rt.controls.request(
            PendingChange(cfg(c="bzip2"), on_applied=applied.append)
        )

    tb.sim.process(reconfigure())
    tb.run(until=5000)
    assert rt.finished.triggered
    assert applied == [True]
    assert rt.controls.current.c == "bzip2"
    assert len(rt.controls.history) == 1
    # Per-image times differ before/after the switch.
    durations = [d for _, d in wl.image_times]
    assert durations[0] != pytest.approx(durations[-1], rel=0.01)


def test_viz_interaction_restarts_fovea():
    moves = []

    def interaction(image_id, seq, x, y):
        if image_id == 0 and seq == 2 and not moves:
            moves.append(True)
            return (100, 100)
        return None

    wl = VizWorkload(n_images=1, interaction=interaction)
    _, wl, _ = run_viz(cfg(dR=320), workload=wl)
    # The restart adds extra rounds beyond the nominal 4.
    assert len(wl.round_times) > 4


def test_viz_real_fidelity_small_image():
    app = make_viz_app(dr_domain=(16, 32), level_domain=(1, 2))
    wl = VizWorkload(n_images=1, image_side=64, levels=2, fidelity="real")
    rt, wl, _ = run_viz(
        Configuration({"dR": 16, "c": "lzw", "l": 2}), workload=wl, app=app
    )
    assert rt.qos.get("transmit_time") > 0
    assert len(wl.round_times) == 2  # 32/16


def test_viz_workload_validation():
    with pytest.raises(ValueError):
        VizWorkload(fidelity="imaginary")
    with pytest.raises(ValueError):
        VizWorkload(n_images=0)


def test_viz_costs_affect_time():
    heavy = VizWorkload(n_images=1, costs=VizCosts(display_cost=4.5e-4))
    light = VizWorkload(n_images=1, costs=VizCosts(display_cost=3e-5))
    rt_heavy, _, _ = run_viz(cfg(), workload=heavy)
    rt_light, _, _ = run_viz(cfg(), workload=light)
    assert rt_heavy.qos.get("transmit_time") > rt_light.qos.get("transmit_time") * 2


def test_viz_server_disk_storage_slows_transmission():
    """With disk-backed image storage, a slow server disk becomes visible
    in transmission time (Section 2.1's "images stored in the server")."""
    mem_wl = VizWorkload(n_images=1)
    disk_wl = VizWorkload(n_images=1, server_disk=True)
    rt_mem, _, _ = run_viz(cfg(), workload=mem_wl)

    app = make_viz_app(server_speed=450.0)
    tb = Testbed(host_specs=app.env.host_specs(), link_specs=app.env.link_specs())
    # Throttle the server's disk to 2 MB/s via its sandbox limit.
    rt_disk = app.instantiate(
        tb, cfg(),
        limits={"server": ResourceLimits(disk_bw=2e6)},
        workload=disk_wl,
    )
    tb.run(until=5000)
    assert rt_disk.finished.triggered
    # Reading ~5.6 MB of pyramid data at 2 MB/s adds seconds.
    assert (
        rt_disk.qos.get("transmit_time")
        > rt_mem.qos.get("transmit_time") + 2.0
    )
