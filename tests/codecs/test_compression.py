"""Tests for LZW, RLE/MTF, and codec models (incl. property-based)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs import (
    BZ2,
    CODECS,
    LZW,
    MTF_RLE,
    NULL,
    WaveletPyramid,
    get_codec,
    lzw_compress,
    lzw_decompress,
    mtf_decode,
    mtf_encode,
    rle_compress,
    rle_decompress,
    synthetic_image,
)


# ------------------------------------------------------------------- LZW


def test_lzw_empty():
    assert lzw_compress(b"") == b""
    assert lzw_decompress(b"") == b""


def test_lzw_single_byte():
    assert lzw_decompress(lzw_compress(b"x")) == b"x"


def test_lzw_repetitive_data_compresses_well():
    data = b"abcabcabc" * 1000
    compressed = lzw_compress(data)
    assert len(compressed) < len(data) / 4
    assert lzw_decompress(compressed) == data


def test_lzw_kwkwk_case():
    # The classic pathological pattern that exercises the code==next_code
    # branch.
    data = b"ababababa" * 10
    assert lzw_decompress(lzw_compress(data)) == data


def test_lzw_random_data_roundtrip():
    rng = np.random.default_rng(0)
    data = rng.integers(0, 256, size=10000, dtype=np.uint8).tobytes()
    assert lzw_decompress(lzw_compress(data)) == data


def test_lzw_large_input_crosses_width_boundaries():
    # >65536 dictionary entries worth of input exercises width growth and
    # the dictionary freeze.
    rng = np.random.default_rng(1)
    # Mildly compressible: limited alphabet.
    data = rng.integers(0, 16, size=300000, dtype=np.uint8).tobytes()
    assert lzw_decompress(lzw_compress(data)) == data


def test_lzw_invalid_stream_raises():
    with pytest.raises(ValueError):
        # 0xFFFF as a 9-bit-first stream yields an out-of-range code.
        lzw_decompress(b"\xff\xff\xff\xff")


@given(st.binary(max_size=2000))
@settings(max_examples=150, deadline=None)
def test_lzw_roundtrip_property(data):
    assert lzw_decompress(lzw_compress(data)) == data


# ------------------------------------------------------------------- RLE


def test_rle_empty():
    assert rle_compress(b"") == b""
    assert rle_decompress(b"") == b""


def test_rle_runs():
    data = b"\x00" * 300 + b"\x01" * 5
    compressed = rle_compress(data)
    assert len(compressed) == 6  # runs: 255+45 zeros, 5 ones
    assert rle_decompress(compressed) == data


def test_rle_invalid_stream():
    with pytest.raises(ValueError):
        rle_decompress(b"\x01")
    with pytest.raises(ValueError):
        rle_decompress(b"\x00\x41")


@given(st.binary(max_size=1500))
@settings(max_examples=150, deadline=None)
def test_rle_roundtrip_property(data):
    assert rle_decompress(rle_compress(data)) == data


@given(st.binary(max_size=1000))
@settings(max_examples=100, deadline=None)
def test_mtf_roundtrip_property(data):
    assert mtf_decode(mtf_encode(data)) == data


def test_mtf_stabilizes_repeated_bytes():
    encoded = mtf_encode(b"aaaaab")
    # After the first 'a', repeats encode as index 0.
    assert encoded[1:5] == b"\x00\x00\x00\x00"


# ----------------------------------------------------------------- models


def test_all_registered_codecs_roundtrip_on_image_bytes():
    pyr = WaveletPyramid(synthetic_image(64, seed=1), levels=3)
    data = pyr.region_bytes(3, 0, 0, 64, 64)
    for codec in CODECS.values():
        assert codec.roundtrip_ok(data), codec.name


def test_bz2_beats_lzw_ratio_on_image_data():
    """The relationship that drives the paper's Fig. 6(a) crossover."""
    pyr = WaveletPyramid(synthetic_image(128, seed=2), levels=3)
    data = pyr.region_bytes(3, 0, 0, 128, 128)
    assert BZ2.ratio(data) > LZW.ratio(data) > 1.0


def test_bz2_costs_more_cpu_than_lzw():
    assert BZ2.compress_cost > LZW.compress_cost
    assert BZ2.decompress_cost > LZW.decompress_cost


def test_codec_work_scaling():
    assert LZW.compress_work(2e6) == pytest.approx(2e6 * LZW.compress_cost)
    assert NULL.compress_work(1e9) == 0.0


def test_codec_ratio_edge_cases():
    assert NULL.ratio(b"") == 1.0
    assert NULL.ratio(b"abc") == pytest.approx(1.0)


def test_get_codec():
    assert get_codec("lzw") is LZW
    assert get_codec("bzip2") is BZ2
    assert get_codec("mtf-rle") is MTF_RLE
    with pytest.raises(KeyError):
        get_codec("zstd")
