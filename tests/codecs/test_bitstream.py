"""White-box tests for the LZW bit-level reader/writer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs.lzw import _BitReader, _BitWriter


def test_writer_packs_msb_first():
    w = _BitWriter()
    w.write(0b1, 1)
    w.write(0b0000000, 7)
    assert w.getvalue() == bytes([0b10000000])


def test_writer_pads_final_byte_with_zeros():
    w = _BitWriter()
    w.write(0b101, 3)
    assert w.getvalue() == bytes([0b10100000])


def test_reader_roundtrip_fixed_width():
    w = _BitWriter()
    values = [3, 511, 0, 256, 100]
    for v in values:
        w.write(v, 9)
    r = _BitReader(w.getvalue())
    assert [r.read(9) for _ in values] == values


def test_reader_truncated_stream_raises():
    r = _BitReader(b"\xff")
    with pytest.raises(ValueError):
        r.read(9)


def test_reader_exhausted_accounts_partial_bits():
    w = _BitWriter()
    w.write(0x1FF, 9)
    r = _BitReader(w.getvalue())  # 2 bytes on the wire (9 bits + padding)
    assert not r.exhausted(9)
    r.read(9)
    assert r.exhausted(9)  # 7 padding bits remain, fewer than 9


@given(
    st.lists(
        st.tuples(st.integers(min_value=9, max_value=16), st.data()),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=100, deadline=None)
def test_mixed_width_roundtrip_property(spec):
    """Any sequence of (width, value) pairs round-trips bit-exactly."""
    w = _BitWriter()
    expected = []
    for width, data in spec:
        value = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
        w.write(value, width)
        expected.append((width, value))
    r = _BitReader(w.getvalue())
    for width, value in expected:
        assert r.read(width) == value


def test_writer_output_length_is_ceil_of_bits():
    w = _BitWriter()
    for _ in range(5):
        w.write(0, 9)  # 45 bits -> 6 bytes
    assert len(w.getvalue()) == 6
