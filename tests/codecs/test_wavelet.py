"""Tests for the Haar wavelet transform and pyramids."""

import numpy as np
import pytest

from repro.codecs import (
    WaveletPyramid,
    haar2d_decompose,
    haar2d_forward,
    haar2d_inverse,
    haar2d_reconstruct,
    synthetic_image,
)


def test_forward_shapes():
    img = np.arange(64, dtype=float).reshape(8, 8)
    ll, (lh, hl, hh) = haar2d_forward(img)
    assert ll.shape == lh.shape == hl.shape == hh.shape == (4, 4)


def test_forward_inverse_roundtrip():
    rng = np.random.default_rng(0)
    img = rng.uniform(0, 255, size=(16, 16))
    ll, details = haar2d_forward(img)
    back = haar2d_inverse(ll, details)
    np.testing.assert_allclose(back, img, atol=1e-10)


def test_constant_image_has_zero_details():
    img = np.full((8, 8), 50.0)
    ll, (lh, hl, hh) = haar2d_forward(img)
    np.testing.assert_allclose(lh, 0.0, atol=1e-12)
    np.testing.assert_allclose(hl, 0.0, atol=1e-12)
    np.testing.assert_allclose(hh, 0.0, atol=1e-12)
    # Orthonormal scaling: LL of a constant image is 2x the constant.
    np.testing.assert_allclose(ll, 100.0, atol=1e-12)


def test_energy_preservation():
    """The orthonormal Haar transform preserves total energy (Parseval)."""
    rng = np.random.default_rng(1)
    img = rng.uniform(-1, 1, size=(32, 32))
    ll, (lh, hl, hh) = haar2d_forward(img)
    energy_in = np.sum(img**2)
    energy_out = sum(np.sum(band**2) for band in (ll, lh, hl, hh))
    assert energy_out == pytest.approx(energy_in)


def test_forward_rejects_bad_shapes():
    with pytest.raises(ValueError):
        haar2d_forward(np.zeros(16))
    with pytest.raises(ValueError):
        haar2d_forward(np.zeros((7, 8)))


def test_decompose_reconstruct_roundtrip():
    rng = np.random.default_rng(2)
    img = rng.uniform(0, 255, size=(64, 64))
    dec = haar2d_decompose(img, levels=4)
    assert len(dec) == 5
    back = haar2d_reconstruct(dec)
    np.testing.assert_allclose(back, img, atol=1e-9)


def test_partial_reconstruction_shapes():
    img = synthetic_image(64, seed=3)
    dec = haar2d_decompose(img, levels=3)
    assert haar2d_reconstruct(dec, upto_level=0).shape == (8, 8)
    assert haar2d_reconstruct(dec, upto_level=1).shape == (16, 16)
    assert haar2d_reconstruct(dec, upto_level=3).shape == (64, 64)


def test_decompose_validation():
    img = np.zeros((16, 16))
    with pytest.raises(ValueError):
        haar2d_decompose(img, levels=0)
    with pytest.raises(ValueError):
        haar2d_decompose(img, levels=5)  # 16 / 2^5 < 1
    dec = haar2d_decompose(img, levels=2)
    with pytest.raises(ValueError):
        haar2d_reconstruct(dec, upto_level=3)


def test_pyramid_levels_and_sides():
    img = synthetic_image(128, seed=4)
    pyr = WaveletPyramid(img, levels=4)
    assert pyr.side(4) == 128
    assert pyr.side(3) == 64
    assert pyr.side(0) == 8
    np.testing.assert_allclose(pyr.full_resolution, img, atol=1e-9)


def test_pyramid_level_validation():
    pyr = WaveletPyramid(synthetic_image(32), levels=2)
    with pytest.raises(ValueError):
        pyr.level_image(5)


def test_pyramid_region_clipping():
    pyr = WaveletPyramid(synthetic_image(32), levels=2)
    full = pyr.region(2, -10, -10, 100, 100)
    assert full.shape == (32, 32)
    empty = pyr.region(2, 40, 40, 50, 50)
    assert empty.size == 0
    assert pyr.region_bytes(2, 40, 40, 50, 50) == b""


def test_pyramid_region_bytes_size():
    pyr = WaveletPyramid(synthetic_image(64), levels=3)
    data = pyr.region_bytes(3, 0, 0, 16, 16)
    assert len(data) == 256


def test_pyramid_coarse_level_approximates_image():
    """The coarse approximation tracks the local mean of the original."""
    img = synthetic_image(64, seed=5)
    pyr = WaveletPyramid(img, levels=2)
    coarse = pyr.level_image(0)  # 16x16, scaled by 2 per level (orthonormal)
    block_means = img.reshape(16, 4, 16, 4).mean(axis=(1, 3))
    np.testing.assert_allclose(coarse / 4.0, block_means, atol=1e-9)


def test_synthetic_image_properties():
    img = synthetic_image(64, seed=6)
    assert img.shape == (64, 64)
    assert img.min() >= 0.0
    assert img.max() <= 255.0
    assert img.std() > 10.0  # has actual content


def test_synthetic_image_validation():
    with pytest.raises(ValueError):
        synthetic_image(63)
    with pytest.raises(ValueError):
        synthetic_image(4)


def test_synthetic_image_deterministic():
    a = synthetic_image(32, seed=9)
    b = synthetic_image(32, seed=9)
    np.testing.assert_array_equal(a, b)
    c = synthetic_image(32, seed=10)
    assert not np.array_equal(a, c)
