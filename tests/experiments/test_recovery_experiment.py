"""Smoke tests for the recovery experiment (cheap settings).

The full qualitative assertions (brownout cycle, failover latency
bounds, warm-vs-cold MTTR) live in benchmarks/bench_recovery.py; these
verify the experiment plumbing — payload structure, determinism, and the
supervision/no-supervision contrast — at reduced cost.
"""

import json

import pytest

from repro.experiments import run_chaos, run_recovery

CHEAP_FAULTS = {"events": [{"kind": "kill", "service": "viz-server", "at": 4.0}]}
CHEAP_CROWD = {"users": 4, "start": 2.0, "duration": 5.0, "think": 0.05,
               "r1": 8, "level": 3}


def cheap_run(**kwargs):
    kwargs.setdefault("fault_spec", CHEAP_FAULTS)
    kwargs.setdefault("crowd_spec", CHEAP_CROWD)
    kwargs.setdefault("n_images", 5)
    kwargs.setdefault("brownout", False)
    return run_recovery(seed=0, **kwargs)


def test_recovery_payload_structure_and_restart():
    result, payload = cheap_run()
    assert payload["finished"]
    assert len(payload["image_times"]) == 5
    rec = payload["recovery"]
    assert rec["kills"] == 1 and rec["restarts"] == 1
    assert rec["services"]["viz-server"]["restarts"] == 1
    assert all(s["state"] == "stopped" for s in rec["services"].values())
    (mttr,) = rec["mttr"]
    assert mttr["service"] == "viz-server" and mttr["warm"]
    assert 0.0 < mttr["mttr"] < 1.0
    # Accounting horizon froze at teardown (a hair after the last image,
    # when the close handshake lands), not at the padded `until`.
    assert payload["total_time"] <= payload["horizon"] < payload["total_time"] + 1.0
    assert rec["services"]["viz-server"]["availability"] > 0.9
    # Figure notes narrate the storm.
    assert any("kill" in note for note in result.notes)
    assert any("availability[viz-server]" in note for note in result.notes)


def test_recovery_same_seed_replays_byte_identically():
    _, first = cheap_run()
    _, second = cheap_run()
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)


def test_unsupervised_baseline_accrues_downtime():
    _, sup = cheap_run()
    _, unsup = cheap_run(supervise=False, until=30.0)
    assert not unsup["finished"]
    assert unsup["recovery"]["restarts"] == 0
    a_sup = sup["recovery"]["services"]["viz-server"]["availability"]
    a_unsup = unsup["recovery"]["services"]["viz-server"]["availability"]
    assert a_unsup < a_sup


def test_crowd_is_shed_before_the_interactive_session():
    # Heavy enough pressure to shed the crowd; the interactive client
    # (priority 1) must never lose a round to soft shedding.
    _, payload = cheap_run(
        crowd_spec={"users": 10, "start": 1.0, "duration": 6.0,
                    "think": 0.02, "r1": 12, "level": 3},
    )
    ov = payload["overload"]
    assert ov["crowd_shed"] > 0
    assert ov["interactive_shed_rounds"] == 0
    assert ov["shed_hard"] == 0


def test_chaos_replays_byte_identically_with_supervision():
    """Satellite guarantee: an idle Supervisor is invisible to chaos."""
    _, plain = run_chaos(seed=0)
    _, supervised = run_chaos(seed=0, supervise=True)
    assert json.dumps(plain, sort_keys=True) == json.dumps(
        supervised, sort_keys=True
    )


def test_recovery_rejects_unknown_service_kill():
    with pytest.raises(Exception, match="unknown service"):
        run_recovery(
            seed=0,
            fault_spec={"events": [{"kind": "kill", "service": "ghost",
                                    "at": 1.0}]},
            crowd_spec={"users": 0, "start": 0.0, "duration": 0.0,
                        "think": 0.05, "r1": 4, "level": 3},
            n_images=2,
            brownout=False,
        )
