"""Golden regression tests: pin the headline reproduction numbers.

EXPERIMENTS.md quotes specific measured values; these tests fail if a code
change silently shifts them, keeping the documentation honest.  (Loose
qualitative shape checks live in benchmarks/; these are tight quantitative
pins of deterministic, seeded runs.)
"""

import pytest

from repro.experiments import run_experiment2
from repro.experiments.fig6 import fig6a_database, fig6b_database
from repro.profiling import ResourcePoint
from repro.tunable import Configuration


@pytest.fixture(scope="module")
def db6a():
    db, _, _ = fig6a_database()
    return db


@pytest.fixture(scope="module")
def db6b():
    db, _, _ = fig6b_database()
    return db


def q6a(db, codec, bw):
    return db.predict(
        Configuration({"dR": 320, "c": codec, "l": 4}),
        ResourcePoint({"client.cpu": 1.0, "client.network": bw}),
        "transmit_time",
    )


def test_fig6a_anchor_values(db6a):
    """The numbers quoted in EXPERIMENTS.md for the crossover."""
    assert q6a(db6a, "lzw", 50e3) == pytest.approx(53.2, abs=0.5)
    assert q6a(db6a, "bzip2", 50e3) == pytest.approx(36.2, abs=0.5)
    assert q6a(db6a, "lzw", 500e3) == pytest.approx(6.8, abs=0.2)
    assert q6a(db6a, "bzip2", 500e3) == pytest.approx(10.3, abs=0.3)


def q6b(db, level, cpu):
    return db.predict(
        Configuration({"dR": 320, "c": "lzw", "l": level}),
        ResourcePoint({"client.cpu": cpu, "client.network": 1e6}),
        "transmit_time",
    )


def test_fig6b_anchor_values(db6b):
    """Experiment 2's decision anchors (paper: <10 / ~18 / ~4 seconds)."""
    assert q6b(db6b, 4, 0.9) == pytest.approx(9.7, abs=0.3)
    assert q6b(db6b, 4, 0.4) == pytest.approx(17.5, abs=0.5)
    assert q6b(db6b, 3, 0.4) == pytest.approx(4.4, abs=0.3)


def test_experiment2_switch_time_pinned(db6b):
    _, runs = run_experiment2(db=db6b)
    t_switch, old, new = runs["adaptive"].switches[0]
    assert (old.l, new.l) == (4, 3)
    assert t_switch == pytest.approx(35.5, abs=1.0)
    durations = [round(d, 1) for _, d in runs["adaptive"].image_series]
    assert durations[0] == pytest.approx(9.7, abs=0.2)
    assert durations[-1] == pytest.approx(4.4, abs=0.2)


def test_measured_codec_ratios_pinned():
    from repro.apps.visualization import measured_codec_ratios

    ratios = measured_codec_ratios()
    assert ratios["lzw"] == pytest.approx(2.17, abs=0.05)
    assert ratios["bzip2"] == pytest.approx(3.89, abs=0.1)
