"""Small-scale smoke tests for the crowd experiment harness.

The million-user acceptance runs live in ``benchmarks/bench_crowd.py``;
here the same scenarios run at populations small enough for tier-1, which
exercises every code path (controller wiring, crowd monitor estimates,
brownout plumbing, payload assembly, sweep cells) without the load.
"""

import json

import pytest

from repro.experiments import crowd_cell, run_crowd
from repro.experiments.crowd import DEFAULT_USERS

SMALL = dict(users=2_000, until=40.0, n_images=2)


def test_scenario_validation():
    with pytest.raises(ValueError, match="scenario must be one of"):
        run_crowd(scenario="tsunami")


def test_default_populations():
    assert DEFAULT_USERS == {
        "diurnal": 1_000_000, "flash": 200_000, "baseline": 100,
    }


def test_diurnal_small_scale_payload_shape():
    fig, payload = run_crowd(seed=0, scenario="diurnal", **SMALL)
    assert payload["experiment"] == "crowd"
    assert payload["scenario"] == "diurnal"
    assert payload["users"] == 2_000
    assert payload["crowd_closed"]
    assert payload["finished"]
    for name in ("free", "premium"):
        row = payload["classes"][name]
        assert row["served"] + row["shed"] + row["lost"] == row["issued"]
        assert row["inflight"] == 0
    totals = payload["totals"]
    assert totals["issued"] == sum(
        payload["classes"][c]["issued"] for c in ("free", "premium")
    )
    # The figure carries the interactive session's image timeline.
    (series,) = fig.series.values()
    assert len(series.points) == payload["n_images"] == 2
    assert any("class free" in n for n in fig.notes)


def test_flash_small_scale_has_overload_account():
    _fig, payload = run_crowd(seed=0, scenario="flash", **SMALL)
    assert payload["finished"]
    ov = payload["overload"]
    # At 2k users the spike is far below shed_depth: the guard admits
    # everything and brownout never engages — the account still exists.
    assert set(ov) >= {"served", "shed", "brownout_windows", "queue_peak"}
    assert ov["served"] > 0


def test_small_scale_byte_identity_and_seed_sensitivity():
    _f1, first = run_crowd(seed=0, scenario="diurnal", **SMALL)
    _f2, second = run_crowd(seed=0, scenario="diurnal", **SMALL)
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)
    _f3, other = run_crowd(seed=1, scenario="diurnal", **SMALL)
    assert json.dumps(first, sort_keys=True) != json.dumps(other, sort_keys=True)


def test_baseline_scenario_runs_real_coroutines():
    _fig, payload = run_crowd(seed=0, scenario="baseline", users=8,
                              until=30.0, n_images=2)
    assert payload["finished"]
    row = payload["classes"]["baseline"]
    assert row["users"] == 8
    assert row["served"] > 0


def test_crowd_cell_matches_run_crowd():
    """The sweep job wrapper is a faithful uninstrumented run."""
    cell = crowd_cell({"scenario": "diurnal", **SMALL}, seed=0)
    _fig, direct = run_crowd(seed=0, scenario="diurnal", **SMALL)
    assert json.dumps(cell, sort_keys=True) == json.dumps(direct, sort_keys=True)


def test_instrumentation_is_passive():
    """recorder/usage attached -> byte-identical payload (chaos contract)."""
    from repro.obs import TraceRecorder, UsageAccountant

    _f, plain = run_crowd(seed=0, scenario="diurnal", **SMALL)
    _f, instrumented = run_crowd(
        seed=0, scenario="diurnal", recorder=TraceRecorder(),
        usage=UsageAccountant(), **SMALL,
    )
    assert json.dumps(plain, sort_keys=True) == json.dumps(
        instrumented, sort_keys=True
    )
