"""Smoke tests for the figure modules (cheap settings).

The full qualitative assertions live in benchmarks/; these verify the
experiment plumbing — structure of the results, determinism, and the key
decision in each adaptive scenario — at reduced cost.
"""

import pytest

from repro.experiments import (
    run_experiment1,
    run_experiment2,
    run_experiment3,
    run_fig3a,
    run_fig4a,
)
from repro.experiments.fig6 import fig6a_database


def test_fig3a_structure():
    result = run_fig3a(
        schedule=((0.0, 0.8), (5.0, 0.4)), duration=10.0, bucket=0.5
    )
    assert set(result.series) == {"measured", "specified"}
    measured = result.series["measured"]
    assert len(measured.points) >= 10
    assert all(0.0 <= y <= 1.2 for y in measured.ys)
    # Spec staircase covers both levels.
    assert set(result.series["specified"].ys) == {0.8, 0.4}


def test_fig4a_notes_record_errors():
    result = run_fig4a()
    assert len(result.notes) == 2
    assert all("error=" in n for n in result.notes)


@pytest.fixture(scope="module")
def small_fig6a_db():
    return fig6a_database(bandwidths=(50e3, 200e3, 500e3))


def test_fig6a_small_sweep(small_fig6a_db):
    db, dims, configs = small_fig6a_db
    assert len(db) == 6
    assert len(configs) == 2


def test_experiment1_with_shared_db(small_fig6a_db):
    db, _dims, _configs = small_fig6a_db
    result, runs = run_experiment1(n_images=6, switch_at=15.0, db=db)
    adaptive = runs["adaptive"]
    assert adaptive.switches
    _, old, new = adaptive.switches[0]
    assert (old.c, new.c) == ("lzw", "bzip2")
    assert set(runs) == {"adaptive", "lzw", "bzip2"}
    # Every run downloaded all 6 images.
    for run in runs.values():
        assert len(run.image_series) == 6
    assert "adaptive" in result.series


def test_experiment1_deterministic(small_fig6a_db):
    db, _dims, _configs = small_fig6a_db
    _, runs_a = run_experiment1(n_images=4, switch_at=10.0, db=db, seed=5)
    _, runs_b = run_experiment1(n_images=4, switch_at=10.0, db=db, seed=5)
    assert runs_a["adaptive"].image_series == runs_b["adaptive"].image_series
    assert runs_a["adaptive"].switches == runs_b["adaptive"].switches


def test_experiment2_decision_structure():
    result, runs = run_experiment2(n_images=6, switch_at=20.0)
    adaptive = runs["adaptive"]
    # Initial config is the high resolution; degraded after the drop.
    assert adaptive.switches
    _, old, new = adaptive.switches[0]
    assert (old.l, new.l) == (4, 3)
    assert result.figure == "Fig 7b"


def test_experiment3_decision_structure():
    fig_c, fig_d, runs = run_experiment3(n_images=10, switch_at=20.0)
    adaptive = runs["adaptive"]
    assert adaptive.switches
    _, old, new = adaptive.switches[0]
    assert old.dR == 320
    assert new.dR in (80, 160)  # smaller fovea
    assert fig_c.figure == "Fig 7c"
    assert fig_d.figure == "Fig 7d"


def test_adaptive_run_accessors():
    db, _dims, _configs = fig6a_database(bandwidths=(50e3, 500e3))
    _, runs = run_experiment1(n_images=3, switch_at=8.0, db=db)
    run = runs["adaptive"]
    assert run.total_time > 0
    assert run.qos["transmit_time"] > 0
    assert len(run.response_series) >= len(run.image_series)
