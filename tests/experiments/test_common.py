"""Tests for the experiment-harness containers and rendering."""

import pytest

from repro.experiments import FigureResult, Series, ascii_plot, render_table


def make_result():
    result = FigureResult(
        figure="Fig X", title="test", xlabel="x", ylabel="y"
    )
    a = result.new_series("a")
    for x in (1.0, 2.0, 3.0):
        a.add(x, x * 2)
    b = result.new_series("b")
    b.add(1.0, 9.0)
    b.add(3.0, 1.0)
    return result


def test_series_accessors():
    s = Series("s")
    s.add(2, 4)
    s.add(1, 3)
    assert s.xs == [2.0, 1.0]
    assert s.ys == [4.0, 3.0]
    assert s.y_at(1) == 3.0
    with pytest.raises(KeyError):
        s.y_at(5)


def test_series_monotone():
    inc = Series("i")
    for x, y in ((1, 1), (2, 2), (3, 3)):
        inc.add(x, y)
    assert inc.monotone() == "increasing"
    dec = Series("d")
    for x, y in ((1, 3), (2, 2), (3, 1)):
        dec.add(x, y)
    assert dec.monotone() == "decreasing"
    mixed = Series("m")
    for x, y in ((1, 1), (2, 3), (3, 2)):
        mixed.add(x, y)
    assert mixed.monotone() == "mixed"
    const = Series("c")
    for x in (1, 2):
        const.add(x, 5)
    assert const.monotone() == "constant"


def test_render_table_aligns_all_series():
    table = render_table(make_result())
    lines = table.splitlines()
    assert "a" in lines[0] and "b" in lines[0]
    assert len(lines) == 4  # header + 3 x values
    # Missing values render as '-'.
    assert "-" in table


def test_ascii_plot_contains_marks_and_legend():
    plot = ascii_plot(make_result(), width=40, height=8)
    assert "*" in plot  # first series mark
    assert "o" in plot  # second series mark
    assert "*=a" in plot
    assert "o=b" in plot


def test_ascii_plot_empty():
    empty = FigureResult(figure="f", title="t", xlabel="x", ylabel="y")
    empty.new_series("nothing")
    assert ascii_plot(empty) == "(no data)"


def test_figure_render_includes_notes():
    result = make_result()
    result.note("hello note")
    rendered = result.render(plot=False)
    assert "hello note" in rendered
    assert "Fig X" in rendered


def test_figure_render_with_plot():
    rendered = make_result().render(plot=True, width=30, height=6)
    assert "x" in rendered
