"""Tests for the supervision tree on a bare simulator."""

import pytest

from repro.recovery import RecoveryError, RestartPolicy, Supervisor
from repro.sim import Interrupt, Simulator


def forever(sim):
    """A service body that runs until interrupted."""
    try:
        while True:
            yield sim.timeout(1.0)
    except Interrupt:
        return


def make_supervised(sim, supervisor, name="svc", **kwargs):
    """Register a restartable looping service; returns its record."""

    def start(_state):
        return sim.process(forever(sim), name=name)

    kwargs.setdefault(
        "policy", RestartPolicy(base_delay=0.5, factor=2.0, jitter=0.0)
    )
    proc = sim.process(forever(sim), name=name)
    return supervisor.supervise(name, start, processes=[proc], **kwargs)


def test_kill_restarts_after_backoff_and_records_mttr():
    sim = Simulator()
    sup = Supervisor(sim, seed=0).attach()
    svc = make_supervised(sim, sup)
    sim.schedule_callback(2.0, lambda: sup.kill("svc"))
    sim.run(until=10.0)
    assert svc.state == "up"
    assert svc.restart_count == 1
    assert sup.kills == 1 and sup.restarts == 1
    (mttr,) = sup.mttrs
    assert mttr["service"] == "svc"
    assert mttr["down_at"] == pytest.approx(2.0)
    # base_delay 0.5, no jitter, no ready predicate => up at death + 0.5.
    assert mttr["mttr"] == pytest.approx(0.5)
    avail = sup.availability(10.0)
    assert avail["svc"] == pytest.approx(1.0 - 0.5 / 10.0)


def test_same_seed_same_restart_instants():
    def run(seed):
        sim = Simulator()
        sup = Supervisor(sim, seed=seed).attach()
        make_supervised(
            sim, sup,
            policy=RestartPolicy(base_delay=0.5, factor=2.0, jitter=0.2),
        )
        sim.schedule_callback(1.0, lambda: sup.kill("svc"))
        sim.schedule_callback(4.0, lambda: sup.kill("svc"))
        sim.run(until=10.0)
        return [m["ready_at"] for m in sup.mttrs]

    assert run(0) == run(0)
    assert run(0) != run(1)  # jitter comes from the seeded recovery stream


def test_kill_unknown_service_raises():
    sim = Simulator()
    sup = Supervisor(sim, seed=0).attach()
    with pytest.raises(RecoveryError, match="unknown service"):
        sup.kill("ghost")


def test_kill_down_service_is_a_noop():
    sim = Simulator()
    sup = Supervisor(sim, seed=0).attach()
    make_supervised(sim, sup, policy=RestartPolicy(base_delay=5.0, jitter=0.0))
    sim.schedule_callback(1.0, lambda: sup.kill("svc"))
    # Second kill lands while the service is still DOWN awaiting restart.
    killed = []
    sim.schedule_callback(2.0, lambda: killed.append(sup.kill("svc")))
    sim.run(until=3.0)
    assert killed == [False]
    assert sup.kills == 1


def test_duplicate_registration_rejected():
    sim = Simulator()
    sup = Supervisor(sim, seed=0).attach()
    make_supervised(sim, sup)
    with pytest.raises(RecoveryError, match="already supervised"):
        make_supervised(sim, sup)


def test_unsupervised_registry_accrues_downtime_without_restarting():
    sim = Simulator()
    sup = Supervisor(sim, seed=0).attach()
    svc = make_supervised(sim, sup, restarts=False)
    sim.schedule_callback(2.0, lambda: sup.kill("svc"))
    sim.run(until=10.0)
    assert svc.state == "down"
    assert svc.restart_count == 0 and sup.restarts == 0
    assert sup.availability(10.0)["svc"] == pytest.approx(1.0 - 8.0 / 10.0)


def test_warm_restart_receives_latest_checkpoint_state():
    sim = Simulator()
    sup = Supervisor(sim, seed=0).attach()
    seen = []

    def start(state):
        seen.append(state)
        return sim.process(forever(sim), name="svc")

    proc = sim.process(forever(sim), name="svc")
    sup.supervise(
        "svc", start, processes=[proc],
        policy=RestartPolicy(base_delay=0.5, jitter=0.0),
        snapshot=lambda: {"t": sim.now},
    )
    # Safe-point checkpoints happen while the service is up.
    sim.schedule_callback(1.0, lambda: sup.on_safe_point(None, 1.0))
    sim.schedule_callback(3.0, lambda: sup.on_safe_point(None, 3.0))
    sim.schedule_callback(4.0, lambda: sup.kill("svc"))
    sim.run(until=6.0)
    assert seen == [{"t": 3.0}]
    assert sup.mttrs[0]["warm"] is True


def test_cold_policy_ignores_checkpoints():
    sim = Simulator()
    sup = Supervisor(sim, seed=0).attach()
    seen = []

    def start(state):
        seen.append(state)
        return sim.process(forever(sim), name="svc")

    proc = sim.process(forever(sim), name="svc")
    sup.supervise(
        "svc", start, processes=[proc],
        policy=RestartPolicy(base_delay=0.5, jitter=0.0, warm=False),
        snapshot=lambda: {"t": sim.now},
    )
    sim.schedule_callback(1.0, lambda: sup.on_safe_point(None, 1.0))
    sim.schedule_callback(2.0, lambda: sup.kill("svc"))
    sim.run(until=4.0)
    assert seen == [None]
    assert sup.mttrs[0]["warm"] is False


def test_checkpoint_interval_throttles_safe_point_sweeps():
    sim = Simulator()
    sup = Supervisor(sim, seed=0, checkpoint_interval=1.0).attach()
    make_supervised(sim, sup, snapshot=lambda: {})
    for t in (0.0, 0.3, 0.6, 1.0, 1.2, 2.5):
        sup._last_checkpoint = sup._last_checkpoint  # no-op; keep flake8 quiet
        sup.on_safe_point(None, t)
    # Accepted sweeps: 0.0, 1.0, 2.5.
    assert sup.store.saved == 3


def test_restart_storm_escalates():
    sim = Simulator()
    sup = Supervisor(sim, seed=0).attach()
    escalated = []

    def suicide(_state):
        def body():
            return
            yield  # pragma: no cover - makes this a generator

        return sim.process(body(), name="svc")

    proc = sim.process(forever(sim), name="svc")
    svc = sup.supervise(
        "svc", suicide, processes=[proc],
        policy=RestartPolicy(
            base_delay=0.1, factor=1.0, jitter=0.0,
            max_restarts=3, storm_window=100.0,
        ),
        on_escalate=escalated.append,
    )
    sim.schedule_callback(1.0, lambda: sup.kill("svc"))
    sim.run(until=50.0)
    assert svc.state == "escalated"
    assert svc.restart_count == 3
    assert sup.escalations == 1
    assert escalated == ["svc"]


def test_one_for_all_restart_of_multi_process_service():
    sim = Simulator()
    sup = Supervisor(sim, seed=0).attach()

    def start(_state):
        return [
            sim.process(forever(sim), name="svc-a"),
            sim.process(forever(sim), name="svc-b"),
        ]

    procs = start(None)
    svc = sup.supervise(
        "svc", start, processes=procs,
        policy=RestartPolicy(base_delay=0.5, jitter=0.0),
    )
    # Kill tears down *both* processes and restarts the pair as a unit.
    sim.schedule_callback(2.0, lambda: sup.kill("svc"))
    sim.run(until=5.0)
    assert svc.state == "up"
    assert svc.restart_count == 1
    assert len(svc.alive()) == 2
    assert all(not p.is_alive for p in procs)


def test_ready_predicate_delays_mark_up():
    sim = Simulator()
    sup = Supervisor(sim, seed=0).attach()
    ready_at = 4.0

    def start(_state):
        return sim.process(forever(sim), name="svc")

    proc = sim.process(forever(sim), name="svc")
    sup.supervise(
        "svc", start, processes=[proc],
        policy=RestartPolicy(base_delay=0.5, jitter=0.0, ready_poll=0.25),
        ready=lambda: sim.now >= ready_at,
    )
    sim.schedule_callback(1.0, lambda: sup.kill("svc"))
    sim.run(until=6.0)
    (mttr,) = sup.mttrs
    # Down at 1.0, relaunched at 1.5, polls every 0.25 until ready at 4.0.
    assert mttr["ready_at"] == pytest.approx(4.0)
    assert mttr["mttr"] == pytest.approx(3.0)


def test_shutdown_closes_books_and_freezes_horizon():
    sim = Simulator()
    sup = Supervisor(sim, seed=0).attach()
    svc = make_supervised(
        sim, sup, policy=RestartPolicy(base_delay=50.0, jitter=0.0)
    )
    sim.schedule_callback(2.0, lambda: sup.kill("svc"))
    sim.schedule_callback(5.0, sup.shutdown)
    sim.run(until=100.0)
    assert sup.shutdown_at == pytest.approx(5.0)
    assert svc.state == "stopped"
    # Downtime stopped accruing at shutdown, not at sim.now (=100).
    assert svc.downtime == pytest.approx(3.0)
    assert sup.availability()["svc"] == pytest.approx(1.0 - 3.0 / 5.0)
    # Deaths after shutdown are teardown noise, never restarts.
    assert sup.restarts == 0
