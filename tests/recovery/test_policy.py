"""Tests for restart policies and the checkpoint store (pure data)."""

import pytest

from repro.recovery import Checkpoint, CheckpointStore, RecoveryError, RestartPolicy
from repro.sim import stream


# ----------------------------------------------------------- RestartPolicy


def test_delay_grows_exponentially_and_caps():
    policy = RestartPolicy(base_delay=1.0, factor=2.0, jitter=0.0, max_delay=5.0)
    rng = stream(0, "recovery")
    assert policy.delay(0, rng) == 1.0
    assert policy.delay(1, rng) == 2.0
    assert policy.delay(2, rng) == 4.0
    assert policy.delay(3, rng) == 5.0  # capped
    assert policy.delay(10, rng) == 5.0


def test_delay_jitter_is_bounded_and_deterministic():
    policy = RestartPolicy(base_delay=1.0, factor=2.0, jitter=0.25)
    draws_a = [policy.delay(0, stream(7, "recovery")) for _ in range(1)]
    draws_b = [policy.delay(0, stream(7, "recovery")) for _ in range(1)]
    assert draws_a == draws_b  # same stream state => same delay
    rng = stream(7, "recovery")
    for attempt in range(5):
        d = policy.delay(attempt, rng)
        base = min(1.0 * 2.0 ** attempt, policy.max_delay)
        assert base <= d < base + 0.25 or d == policy.max_delay + policy.jitter


@pytest.mark.parametrize(
    "kwargs",
    [
        {"base_delay": -0.1},
        {"jitter": -0.01},
        {"max_delay": 0.0},
        {"factor": 0.5},
        {"max_restarts": 0},
        {"storm_window": 0.0},
        {"ready_poll": 0.0},
        {"ready_timeout": -1.0},
    ],
)
def test_invalid_policies_rejected(kwargs):
    with pytest.raises(RecoveryError):
        RestartPolicy(**kwargs)


# --------------------------------------------------------- CheckpointStore


def test_store_keeps_latest_per_service():
    store = CheckpointStore()
    assert store.latest("svc") is None
    store.save("svc", 1.0, {"v": 1})
    ckpt = store.save("svc", 2.0, {"v": 2})
    assert store.latest("svc") is ckpt
    assert ckpt.seq == 2 and ckpt.state == {"v": 2}
    assert store.saved == 2
    assert store.services() == ["svc"]


def test_adopt_accepts_only_fresher_checkpoints():
    store = CheckpointStore()
    store.save("ctl", 1.0, {"v": "mine"})
    stale = Checkpoint(service="ctl", seq=1, time=0.5, state={"v": "old"})
    assert not store.adopt(stale)
    assert store.latest("ctl").state == {"v": "mine"}
    fresher = Checkpoint(service="ctl", seq=5, time=3.0, state={"v": "theirs"})
    assert store.adopt(fresher)
    assert store.latest("ctl").state == {"v": "theirs"}
    # Local sequence numbering continues past the adopted checkpoint.
    assert store.save("ctl", 4.0, {"v": "next"}).seq == 6


def test_to_dict_is_json_friendly_and_sorted():
    store = CheckpointStore()
    store.save("b", 1.0, {"x": 1})
    store.save("a", 2.0, {"y": [1, 2]})
    dump = store.to_dict()
    assert list(dump) == ["a", "b"]
    assert dump["b"] == {"seq": 1, "time": 1.0, "state": {"x": 1}}
