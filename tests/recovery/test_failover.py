"""Tests for heartbeat-based controller failover on a two-host testbed."""

import pytest

from repro.recovery import FailoverMember
from repro.sandbox import Testbed
from repro.tunable import (
    ConfigSpace,
    Configuration,
    ControlParameter,
    ExecutionEnv,
    HostComponent,
    LinkComponent,
    QoSMetric,
    TaskGraph,
    TaskSpec,
    TunableApp,
)

PERIOD = 0.5
TAKEOVER_AFTER = 1.5
#: Worst-case silence-to-activation: the silence threshold plus up to two
#: watchdog ticks (one to age past the threshold, one for the URGENT tick).
WINDOW = TAKEOVER_AFTER + 2 * PERIOD


def make_rt(until=60.0):
    """A do-nothing two-host app runtime that stays alive until ``until``."""
    space = ConfigSpace([ControlParameter("mode", ("x",))])
    env = ExecutionEnv(
        [HostComponent("client", cpu_speed=100.0),
         HostComponent("server", cpu_speed=100.0)],
        [LinkComponent("client", "server", bandwidth=1e6, latency=0.001)],
    )

    def launcher(rt):
        def main():
            yield rt.sim.timeout(until)
            rt.qos.update("done", 1.0)

        return rt.sim.process(main())

    app = TunableApp(
        "idle", space, env,
        metrics=[QoSMetric("done")],
        tasks=TaskGraph([TaskSpec("idle", resources=("client.cpu",))]),
        launcher=launcher,
    )
    tb = Testbed(host_specs=env.host_specs(), link_specs=env.link_specs())
    rt = app.instantiate(tb, Configuration({"mode": "x"}))
    return tb, rt


def make_pair(tb, rt, snapshot=None, activations=None):
    primary = FailoverMember(
        rt, "client", ["client", "server"],
        activate=lambda state: None,
        snapshot=snapshot,
        period=PERIOD, takeover_after=TAKEOVER_AFTER, initially_active=True,
    ).start()
    standby = FailoverMember(
        rt, "server", ["client", "server"],
        activate=(activations.append if activations is not None
                  else (lambda state: None)),
        period=PERIOD, takeover_after=TAKEOVER_AFTER,
    ).start()
    return primary, standby


def test_ranks_follow_sorted_member_order():
    tb, rt = make_rt()
    primary, standby = make_pair(tb, rt)
    assert primary.rank == 0 and standby.rank == 1
    assert standby.peers == ["client"]


def test_member_validation():
    tb, rt = make_rt()
    with pytest.raises(ValueError, match="not in members"):
        FailoverMember(rt, "nowhere", ["client", "server"],
                       activate=lambda s: None)
    with pytest.raises(ValueError, match="positive"):
        FailoverMember(rt, "client", ["client"], activate=lambda s: None,
                       period=0.0)


def test_standby_stays_passive_while_primary_beats():
    tb, rt = make_rt()
    primary, standby = make_pair(tb, rt)
    tb.run(until=10.0)
    assert primary.active and not standby.active
    assert standby.takeovers == 0
    assert standby.last_seen["client"] > 0.0


def test_standby_takes_over_with_replicated_state_and_hands_back():
    tb, rt = make_rt()
    activations = []
    primary, standby = make_pair(
        tb, rt, snapshot=lambda: {"decision": "d1"}, activations=activations
    )
    tb.sim.schedule_callback(5.0, primary.stop)
    tb.sim.schedule_callback(12.0, primary.start)
    tb.run(until=20.0)

    assert standby.takeovers == 1
    # The standby resumed from the state the primary replicated in its
    # heartbeats before dying.
    assert activations == [{"decision": "d1"}]
    assert standby.failover_latencies[0] <= WINDOW
    # The primary's heartbeats resumed => the standby stood down again.
    assert standby.handbacks == 1
    assert primary.active and not standby.active


def test_takeover_latency_is_measured_from_last_heartbeat():
    tb, rt = make_rt()
    primary, standby = make_pair(tb, rt)
    tb.sim.schedule_callback(5.0, primary.stop)
    tb.run(until=10.0)
    (latency,) = standby.failover_latencies
    # Silence threshold is a lower bound; the watchdog tick cadence an upper.
    assert TAKEOVER_AFTER <= latency <= WINDOW


def test_stop_is_idempotent_and_kills_processes():
    tb, rt = make_rt()
    primary, _standby = make_pair(tb, rt)
    tb.run(until=3.0)
    primary.stop()
    primary.stop()
    tb.run(until=4.0)
    assert all(not p.is_alive for p in primary.processes())
