"""Tests for overload admission, QoS-aware shedding, and brownout hysteresis."""

from types import SimpleNamespace

import pytest

from repro.recovery import BrownoutController, OverloadGuard, OverloadPolicy
from repro.sim import Simulator
from repro.tunable import Configuration


class Req:
    def __init__(self, priority):
        self.priority = priority


# ------------------------------------------------------------- the guard


def test_policy_validation():
    with pytest.raises(ValueError):
        OverloadPolicy(queue_capacity=0)
    with pytest.raises(ValueError):
        OverloadPolicy(shed_depth=-1)
    with pytest.raises(ValueError):
        OverloadPolicy(queue_capacity=4, shed_depth=8)


@pytest.mark.parametrize(
    "priority,depth,admitted",
    [
        (0, 0, True),    # idle queue: everyone gets in
        (1, 0, True),
        (0, 4, False),   # at the soft depth, low priority is shed
        (1, 4, True),    # ...but the interactive class survives
        (0, 63, False),
        (1, 63, True),
        (1, 64, False),  # hard capacity sheds everyone
        (0, 64, False),
    ],
)
def test_admit_matrix(priority, depth, admitted):
    guard = OverloadGuard(
        OverloadPolicy(queue_capacity=64, shed_depth=4, keep_priority=1)
    )
    assert guard.admit(Req(priority), depth) is admitted


def test_totals_distinguish_soft_and_hard_sheds():
    guard = OverloadGuard(
        OverloadPolicy(queue_capacity=8, shed_depth=2, keep_priority=1)
    )
    guard.admit(Req(1), 0)    # served
    guard.admit(Req(0), 3)    # soft shed
    guard.admit(Req(1), 9)    # hard shed
    totals = guard.totals()
    assert totals == {
        "served": 1, "shed": 2, "shed_low_priority": 1, "shed_hard": 1,
        "queue_peak": 9,
    }


def test_request_without_priority_counts_as_keep():
    guard = OverloadGuard(
        OverloadPolicy(queue_capacity=8, shed_depth=2, keep_priority=1)
    )
    assert guard.admit(object(), 5)  # no .priority => interactive class


# ---------------------------------------------------------------- brownout


class FakeController:
    def __init__(self):
        self.calls = []

    def force_config(self, config, reason=""):
        self.calls.append(("force", config.label(), reason))

    def resume_normal(self, reason=""):
        self.calls.append(("resume", None, reason))


def make_brownout(sim, guard, **kwargs):
    rt = SimpleNamespace(sim=sim, finished=None)
    controller = FakeController()
    ctl = BrownoutController(
        rt, controller, guard, Configuration({"c": "lzw", "dR": 320, "l": 3}),
        period=1.0, enter_shed_rate=0.5, exit_shed_rate=0.1,
        enter_after=2, exit_after=3, **kwargs,
    )
    return ctl, controller


def test_brownout_validation():
    sim = Simulator()
    rt = SimpleNamespace(sim=sim, finished=None)
    cheap = Configuration({"c": "lzw"})
    with pytest.raises(ValueError):
        BrownoutController(rt, FakeController(), OverloadGuard(), cheap,
                           period=0.0)
    with pytest.raises(ValueError):
        BrownoutController(rt, FakeController(), OverloadGuard(), cheap,
                           enter_shed_rate=0.1, exit_shed_rate=0.5)
    with pytest.raises(ValueError):
        BrownoutController(rt, FakeController(), OverloadGuard(), cheap,
                           enter_after=0)


def drive(sim, guard, rates, ctl):
    """Feed the guard one (served, shed) delta per brownout period."""

    def feeder():
        for served, shed in rates:
            guard.served += served
            guard.shed += shed
            yield sim.timeout(1.0)
        ctl.stop()

    sim.process(feeder(), name="feeder")


def test_brownout_enters_after_sustained_shedding_only():
    sim = Simulator()
    guard = OverloadGuard()
    ctl, controller = make_brownout(sim, guard)
    ctl.start()
    # One hot window, then calm: hysteresis must NOT trip on the blip.
    drive(sim, guard, [(1, 9), (9, 1), (9, 1), (9, 1)], ctl)
    sim.run(until=10.0)
    assert controller.calls == []
    assert ctl.windows == []


def test_brownout_full_cycle_enter_then_exit():
    sim = Simulator()
    guard = OverloadGuard()
    ctl, controller = make_brownout(sim, guard)
    ctl.start()
    hot, calm = (1, 9), (19, 1)
    drive(sim, guard, [hot, hot, hot, calm, calm, calm, calm], ctl)
    sim.run(until=20.0)
    kinds = [c[0] for c in controller.calls]
    assert kinds == ["force", "resume"]
    assert controller.calls[0][1] == "c=lzw,dR=320,l=3"
    assert controller.calls[0][2] == "brownout-enter"
    assert controller.calls[1][2] == "brownout-exit"
    # One closed window: entered after 2 hot periods, left after 3 calm.
    ((t0, t1),) = ctl.windows
    assert t0 == pytest.approx(2.0)
    assert t1 == pytest.approx(6.0)
    assert not ctl.in_brownout


def test_brownout_window_left_open_when_overload_persists():
    sim = Simulator()
    guard = OverloadGuard()
    ctl, controller = make_brownout(sim, guard)
    ctl.start()
    drive(sim, guard, [(1, 9)] * 5, ctl)
    sim.run(until=10.0)
    assert [c[0] for c in controller.calls] == ["force"]
    ((t0, t1),) = ctl.windows
    assert t1 is None
    assert ctl.in_brownout


def test_idle_periods_do_not_count_as_shedding():
    sim = Simulator()
    guard = OverloadGuard()
    ctl, controller = make_brownout(sim, guard)
    ctl.start()
    drive(sim, guard, [(0, 0)] * 4, ctl)
    sim.run(until=10.0)
    assert controller.calls == []
