"""Tests for links, network message passing, hosts, and background load."""

import numpy as np
import pytest

from repro.cluster import (
    BackgroundLoad,
    Host,
    Link,
    Network,
    NetworkError,
    PeriodicDaemon,
    PII_450,
    PII_333,
    PPRO_200,
)
from repro.sim import Simulator


def make_pair(sim, bandwidth=1000.0, latency=0.0):
    net = Network(sim)
    a = Host(sim, "a", cpu_speed=100.0)
    b = Host(sim, "b", cpu_speed=100.0)
    net.register(a)
    net.register(b)
    net.connect("a", "b", bandwidth=bandwidth, latency=latency)
    return net, a, b


# ------------------------------------------------------------------ Link


def test_link_transfer_time():
    sim = Simulator()
    link = Link(sim, bandwidth=1000.0)
    _, delivered = link.transfer(500.0)
    sim.run()
    assert delivered.value == pytest.approx(0.5)


def test_link_latency_added_after_drain():
    sim = Simulator()
    link = Link(sim, bandwidth=1000.0, latency=0.2)
    _, delivered = link.transfer(500.0)
    sim.run()
    assert delivered.value == pytest.approx(0.7)


def test_link_concurrent_transfers_share_bandwidth():
    sim = Simulator()
    link = Link(sim, bandwidth=1000.0)
    _, d1 = link.transfer(1000.0)
    _, d2 = link.transfer(1000.0)
    sim.run()
    assert d1.value == pytest.approx(2.0)
    assert d2.value == pytest.approx(2.0)


def test_link_cap_limits_single_flow():
    sim = Simulator()
    link = Link(sim, bandwidth=1000.0)
    _, delivered = link.transfer(500.0, cap=100.0)
    sim.run()
    assert delivered.value == pytest.approx(5.0)


def test_link_bandwidth_change_mid_transfer():
    sim = Simulator()
    link = Link(sim, bandwidth=1000.0)
    _, delivered = link.transfer(1000.0)

    def controller():
        yield sim.timeout(0.5)  # 500 bytes sent
        link.set_bandwidth(100.0)

    sim.process(controller())
    sim.run()
    # Remaining 500 bytes at 100 B/s -> 0.5 + 5.0.
    assert delivered.value == pytest.approx(5.5)


def test_link_zero_size_transfer():
    sim = Simulator()
    link = Link(sim, bandwidth=1000.0, latency=0.1)
    _, delivered = link.transfer(0.0)
    sim.run()
    assert delivered.value == pytest.approx(0.1)


def test_link_rejects_negative():
    sim = Simulator()
    with pytest.raises(ValueError):
        Link(sim, bandwidth=10.0, latency=-1.0)
    link = Link(sim, bandwidth=10.0)
    with pytest.raises(ValueError):
        link.transfer(-5.0)


# --------------------------------------------------------------- Network


def test_message_delivery_to_mailbox():
    sim = Simulator()
    net, a, b = make_pair(sim, bandwidth=1000.0)

    def sender():
        yield a.send("b", "req", {"x": 1}, size=500.0)

    def receiver():
        msg = yield b.mailbox("req").get()
        return (sim.now, msg.payload, msg.src)

    sim.process(sender())
    proc = sim.process(receiver())
    sim.run()
    assert proc.value == (0.5, {"x": 1}, "a")


def test_messages_ordered_on_same_port():
    sim = Simulator()
    net, a, b = make_pair(sim)
    got = []

    def sender():
        yield a.send("b", "p", 1, size=100.0)
        yield a.send("b", "p", 2, size=100.0)

    def receiver():
        for _ in range(2):
            msg = yield b.mailbox("p").get()
            got.append(msg.payload)

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    assert got == [1, 2]


def test_ports_are_independent():
    sim = Simulator()
    net, a, b = make_pair(sim)

    def sender():
        yield a.send("b", "data", "D", size=10.0)
        yield a.send("b", "ctrl", "C", size=10.0)

    def receiver():
        ctrl = yield b.mailbox("ctrl").get()
        data = yield b.mailbox("data").get()
        return (ctrl.payload, data.payload)

    sim.process(sender())
    proc = sim.process(receiver())
    sim.run()
    assert proc.value == ("C", "D")


def test_duplex_directions_independent():
    sim = Simulator()
    net, a, b = make_pair(sim, bandwidth=1000.0)

    def ping():
        yield a.send("b", "p", "ping", size=1000.0)

    def pong():
        yield b.send("a", "p", "pong", size=1000.0)

    sim.process(ping())
    sim.process(pong())
    sim.run()
    # Both complete at t=1.0: no shared-bandwidth interaction between
    # directions.
    assert sim.now == pytest.approx(1.0)


def test_unknown_route_raises():
    sim = Simulator()
    net = Network(sim)
    host = Host(sim, "solo", cpu_speed=1.0)
    net.register(host)
    with pytest.raises(NetworkError):
        net.link("solo", "nowhere")
    with pytest.raises(NetworkError):
        net.connect("solo", "nowhere", bandwidth=1.0)


def test_duplicate_host_rejected():
    sim = Simulator()
    net = Network(sim)
    net.register(Host(sim, "x", cpu_speed=1.0))
    with pytest.raises(NetworkError):
        net.register(Host(sim, "x", cpu_speed=1.0))


def test_nic_stats_updated():
    sim = Simulator()
    net, a, b = make_pair(sim)

    def sender():
        yield a.send("b", "p", None, size=300.0)

    sim.process(sender())
    sim.run()
    assert a.nic_stats.bytes_sent == 300.0
    assert b.nic_stats.bytes_received == 300.0
    assert len(b.nic_stats.recv_log) == 1
    t, size, dur = b.nic_stats.recv_log[0]
    assert size == 300.0
    assert dur == pytest.approx(0.3)


def test_send_without_network_raises():
    sim = Simulator()
    host = Host(sim, "lonely", cpu_speed=1.0)
    with pytest.raises(RuntimeError):
        host.send("b", "p", None, size=1.0)


# ------------------------------------------------------------- Machines


def test_machine_ratios():
    assert PII_333.clock_ratio(PII_450) == pytest.approx(333.0 / 450.0)
    assert PPRO_200.specint_ratio(PII_450) == pytest.approx(8.2 / 17.2)
    assert PII_450.mem_pages == 128 * 1024 * 1024 // 4096


# ------------------------------------------------------ Background load


def test_background_load_steals_cpu():
    sim = Simulator()
    host = Host(sim, "h", cpu_speed=100.0)
    rng = np.random.default_rng(42)
    daemon = BackgroundLoad(host, rng, mean_interval=0.05, burst_work=1.0)
    app_job = host.cpu.execute(100.0)
    sim.run(until=10.0)
    daemon.stop()
    # The app alone would finish at t=1.0; daemons delay it measurably.
    assert app_job.finished
    assert app_job.done.value > 1.0
    assert daemon.total_work_injected > 0


def test_periodic_daemon_injects_deterministic_work():
    sim = Simulator()
    host = Host(sim, "h", cpu_speed=100.0)
    daemon = PeriodicDaemon(host, period=0.1, work_per_tick=0.5)
    sim.run(until=1.05)
    daemon.stop()
    assert daemon.total_work_injected == pytest.approx(5.0)


def test_periodic_daemon_validates_period():
    sim = Simulator()
    host = Host(sim, "h", cpu_speed=100.0)
    with pytest.raises(ValueError):
        PeriodicDaemon(host, period=0.0, work_per_tick=1.0)
