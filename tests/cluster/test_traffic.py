"""Tests for cross-traffic generation and competition-induced monitoring."""

import pytest

from repro.cluster import CrossTraffic, Link
from repro.runtime import MonitoringAgent
from repro.sandbox import Testbed
from repro.sim import Simulator, stream
from repro.tunable import (
    ConfigSpace,
    Configuration,
    ControlParameter,
    ExecutionEnv,
    HostComponent,
    LinkComponent,
    QoSMetric,
    TaskGraph,
    TaskSpec,
    TunableApp,
)


def test_cross_traffic_consumes_bandwidth():
    sim = Simulator()
    link = Link(sim, bandwidth=1e6)
    traffic = CrossTraffic(
        link, stream(1, "xt"), mean_interval=0.2, burst_bytes=1e5
    )
    _, delivered = link.transfer(2e6)
    sim.run(until=60.0)
    traffic.stop()
    assert delivered.triggered
    # Alone the transfer takes 2 s; with competition it must take longer.
    assert delivered.value > 2.2
    assert traffic.bytes_injected > 0


def test_cross_traffic_deterministic_with_seed():
    results = []
    for _ in range(2):
        sim = Simulator()
        link = Link(sim, bandwidth=1e6)
        traffic = CrossTraffic(link, stream(7, "xt"), mean_interval=0.1)
        sim.run(until=10.0)
        traffic.stop()
        results.append(traffic.bytes_injected)
    assert results[0] == results[1]


def test_cross_traffic_validation():
    sim = Simulator()
    link = Link(sim, bandwidth=1e6)
    with pytest.raises(ValueError):
        CrossTraffic(link, stream(0, "xt"), mean_interval=0.0)


def test_monitor_sees_competition_induced_bandwidth_loss():
    """The monitoring agent detects less available bandwidth when
    cross-traffic competes — without any sandbox limit change."""
    space = ConfigSpace([ControlParameter("mode", ("x",))])
    env = ExecutionEnv(
        [HostComponent("client", cpu_speed=450.0), HostComponent("server", cpu_speed=450.0)],
        [LinkComponent("client", "server", bandwidth=1e6, latency=0.0005)],
    )

    def launcher(rt):
        def server():
            sb = rt.sandbox("server")
            while True:
                msg = yield sb.recv("req")
                if msg.payload is None:
                    return
                yield sb.send("client", "data", None, size=100_000.0)

        def client():
            sb = rt.sandbox("client")
            for _ in range(60):
                yield sb.send("server", "req", True, size=64.0)
                yield sb.recv("data")
            yield sb.send("server", "req", None, size=64.0)
            rt.qos.update("done", 1.0)

        rt.sim.process(server())
        return rt.sim.process(client())

    app = TunableApp(
        "netprobe", space, env,
        metrics=[QoSMetric("done")],
        tasks=TaskGraph([TaskSpec("xfer", resources=("client.network",))]),
        launcher=launcher,
    )
    tb = Testbed(host_specs=env.host_specs(), link_specs=env.link_specs())
    rt = app.instantiate(tb, Configuration({"mode": "x"}))
    agent = MonitoringAgent(rt, watch=["client.network"], window=2.0).start()

    # Inject competing traffic on the server->client link after 2 s.
    link = tb.network.link("server", "client")
    traffic = {}

    def inject():
        yield tb.sim.timeout(2.0)
        traffic["t"] = CrossTraffic(
            link, stream(3, "xt"), mean_interval=0.05, burst_bytes=50_000.0
        )

    tb.sim.process(inject())
    tb.run(until=1.9)
    before = agent.estimates()["client.network"]
    tb.run(until=12.0)
    after = agent.estimates()["client.network"]
    if "t" in traffic:
        traffic["t"].stop()
    agent.stop()
    assert before == pytest.approx(1e6, rel=0.15)
    assert after < before * 0.75
