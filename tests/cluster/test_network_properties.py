"""Property-based tests for network delivery invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Host, Network
from repro.sim import Simulator

sizes = st.lists(
    st.floats(min_value=1.0, max_value=1e5, allow_nan=False),
    min_size=1,
    max_size=15,
)


def make_pair(sim, bandwidth=1e5, latency=0.001):
    net = Network(sim)
    a, b = Host(sim, "a", 100.0), Host(sim, "b", 100.0)
    net.register(a)
    net.register(b)
    net.connect("a", "b", bandwidth=bandwidth, latency=latency)
    return net, a, b


@given(payload_sizes=sizes)
@settings(max_examples=60, deadline=None)
def test_every_message_delivered_exactly_once(payload_sizes):
    sim = Simulator()
    net, a, b = make_pair(sim)
    received = []

    def sender():
        for i, size in enumerate(payload_sizes):
            yield a.send("b", "p", i, size=size)

    def receiver():
        for _ in payload_sizes:
            msg = yield b.mailbox("p").get()
            received.append(msg.payload)

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    assert received == list(range(len(payload_sizes)))
    assert net.messages_delivered == len(payload_sizes)


@given(payload_sizes=sizes)
@settings(max_examples=60, deadline=None)
def test_sequential_sends_fifo_per_port(payload_sizes):
    """Messages sent back-to-back on one port arrive in order with
    non-decreasing delivery times."""
    sim = Simulator()
    net, a, b = make_pair(sim)
    deliveries = []

    def sender():
        for i, size in enumerate(payload_sizes):
            msg = yield a.send("b", "p", i, size=size)
            deliveries.append((msg.payload, msg.deliver_time))

    sim.process(sender())
    sim.run()
    order = [p for p, _ in deliveries]
    times = [t for _, t in deliveries]
    assert order == sorted(order)
    assert times == sorted(times)


@given(payload_sizes=sizes, bandwidth=st.floats(min_value=1e3, max_value=1e6))
@settings(max_examples=60, deadline=None)
def test_total_transfer_time_bounded_by_serial_time(payload_sizes, bandwidth):
    """Sequential sends: completion >= total bytes / bandwidth + latency,
    and fluid sharing never beats the serial lower bound."""
    sim = Simulator()
    latency = 0.001
    net, a, b = make_pair(sim, bandwidth=bandwidth, latency=latency)

    def sender():
        for i, size in enumerate(payload_sizes):
            yield a.send("b", "p", i, size=size)

    proc = sim.process(sender())
    sim.run()
    serial = sum(payload_sizes) / bandwidth + latency * len(payload_sizes)
    assert sim.now == pytest.approx(serial, rel=1e-9)


@given(payload_sizes=sizes)
@settings(max_examples=40, deadline=None)
def test_concurrent_sends_conserve_bytes(payload_sizes):
    """All-at-once sends share the link but every byte is carried."""
    sim = Simulator()
    net, a, b = make_pair(sim, bandwidth=1e5, latency=0.0)
    for i, size in enumerate(payload_sizes):
        a.send("b", "p", i, size=size)
    sim.run()
    link = net.link("a", "b")
    assert link.bytes_carried == pytest.approx(sum(payload_sizes))
    # Fluid sharing is work-conserving: last delivery at total/bandwidth.
    assert sim.now == pytest.approx(sum(payload_sizes) / 1e5, rel=1e-9)
