"""Tests for the disk model and disk-limited sandboxes."""

import pytest

from repro.cluster import Disk, Host
from repro.runtime import MonitoringAgent
from repro.sandbox import ResourceLimits, Sandbox, Testbed
from repro.sim import Simulator
from repro.tunable import (
    ConfigSpace,
    Configuration,
    ControlParameter,
    ExecutionEnv,
    HostComponent,
    QoSMetric,
    TaskGraph,
    TaskSpec,
    TunableApp,
)


def test_read_time_is_seek_plus_transfer():
    sim = Simulator()
    disk = Disk(sim, bandwidth=10e6, seek_time=0.01)
    done = disk.read(1e6)
    sim.run()
    assert done.value == pytest.approx(0.01 + 0.1)
    assert disk.bytes_read == 1e6
    assert disk.operations == 1


def test_write_accounting_separate():
    sim = Simulator()
    disk = Disk(sim, bandwidth=10e6, seek_time=0.0)
    disk.write(5e5)
    sim.run()
    assert disk.bytes_written == 5e5
    assert disk.bytes_read == 0.0


def test_concurrent_operations_share_bandwidth():
    sim = Simulator()
    disk = Disk(sim, bandwidth=10e6, seek_time=0.0)
    a = disk.read(1e6)
    b = disk.read(1e6)
    sim.run()
    # Each runs at 5 MB/s -> 0.2 s.
    assert a.value == pytest.approx(0.2)
    assert b.value == pytest.approx(0.2)


def test_seek_dominates_small_operations():
    sim = Simulator()
    disk = Disk(sim, bandwidth=20e6, seek_time=0.008)
    times = []

    def reader():
        for _ in range(10):
            t0 = sim.now
            yield disk.read(4096)
            times.append(sim.now - t0)

    sim.process(reader())
    sim.run()
    for t in times:
        assert t == pytest.approx(0.008 + 4096 / 20e6)


def test_disk_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Disk(sim, seek_time=-1.0)
    disk = Disk(sim)
    with pytest.raises(ValueError):
        disk.read(-5.0)


def test_sandbox_disk_cap():
    sim = Simulator()
    host = Host(sim, "h", cpu_speed=100.0, disk_bandwidth=20e6, disk_seek=0.0)
    sandbox = Sandbox(host, ResourceLimits(disk_bw=1e6))

    def app():
        yield sandbox.disk_read(2e6)
        return sim.now

    # Capped at 1 MB/s -> 2 s even though the disk could do 20.
    assert sim.run_process(app()) == pytest.approx(2.0)
    assert len(sandbox.disk_log) == 1


def test_sandboxes_share_disk_with_caps():
    sim = Simulator()
    host = Host(sim, "h", cpu_speed=100.0, disk_bandwidth=10e6, disk_seek=0.0)
    a = Sandbox(host, ResourceLimits(disk_bw=2e6), name="a")
    b = Sandbox(host, ResourceLimits(disk_bw=2e6), name="b")
    done = {}

    def app(tag, sandbox):
        yield sandbox.disk_read(2e6)
        done[tag] = sim.now

    sim.process(app("a", a))
    sim.process(app("b", b))
    sim.run()
    assert done["a"] == pytest.approx(1.0)
    assert done["b"] == pytest.approx(1.0)


def test_limits_validation_disk():
    with pytest.raises(ValueError):
        ResourceLimits(disk_bw=0.0)


def disk_app(reads=40, read_bytes=1e6):
    space = ConfigSpace([ControlParameter("mode", ("x",))])
    env = ExecutionEnv([HostComponent("node", cpu_speed=450.0)])

    def launcher(rt):
        def main():
            sb = rt.sandbox("node")
            for _ in range(reads):
                yield sb.disk_read(read_bytes)
                yield sb.compute(1.0)
            rt.qos.update("done", 1.0)

        return rt.sim.process(main())

    return TunableApp(
        "diskapp", space, env,
        metrics=[QoSMetric("done")],
        tasks=TaskGraph([TaskSpec("io", resources=("node.disk", "node.cpu"))]),
        launcher=launcher,
    )


def test_monitor_estimates_disk_bandwidth():
    app = disk_app()
    tb = Testbed(host_specs=app.env.host_specs())
    rt = app.instantiate(
        tb, Configuration({"mode": "x"}),
        limits={"node": ResourceLimits(disk_bw=4e6)},
    )
    agent = MonitoringAgent(rt, watch=["node.disk"], window=3.0).start()
    tb.run(until=3600)
    est = agent.estimates()["node.disk"]
    # Effective rate ~= the 4 MB/s cap (seek adds a small haircut).
    assert est == pytest.approx(4e6, rel=0.15)
    assert agent.system.capacity("node.disk") == 20e6
