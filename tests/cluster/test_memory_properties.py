"""Property-based tests for the LRU memory model."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cluster import Memory


@given(
    limit=st.integers(min_value=1, max_value=64),
    accesses=st.lists(st.integers(min_value=0, max_value=99), min_size=1, max_size=300),
)
@settings(max_examples=100, deadline=None)
def test_faults_bounded_by_accesses_and_floor_by_distinct(limit, accesses):
    mem = Memory(total_pages=1000)
    space = mem.create_space(resident_limit=limit)
    space.alloc_range(0, 100)
    faults = space.touch(accesses)
    distinct = len(set(accesses))
    # Can't fault more than once per access, nor fewer than cold misses
    # for pages beyond capacity.
    assert faults <= len(accesses)
    assert faults >= min(distinct, distinct)  # every first touch faults
    assert faults >= distinct - 0  # cold misses at least
    assert space.resident_pages <= limit


@given(
    limit=st.integers(min_value=4, max_value=64),
    pages=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=100, deadline=None)
def test_working_set_within_limit_faults_once(limit, pages):
    assume(pages <= limit)
    mem = Memory(total_pages=1000)
    space = mem.create_space(resident_limit=limit)
    space.alloc_range(0, pages)
    assert space.touch_range(0, pages) == pages
    for _ in range(3):
        assert space.touch_range(0, pages) == 0


@given(
    limit=st.integers(min_value=1, max_value=32),
    pages=st.integers(min_value=2, max_value=64),
    sweeps=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=100, deadline=None)
def test_sequential_sweep_beyond_limit_always_faults(limit, pages, sweeps):
    assume(pages > limit)
    mem = Memory(total_pages=1000)
    space = mem.create_space(resident_limit=limit)
    space.alloc_range(0, pages)
    total = 0
    for _ in range(sweeps):
        total += space.touch_range(0, pages)
    # LRU + sequential sweep with working set > limit: every touch misses.
    assert total == pages * sweeps


@given(
    limit=st.integers(min_value=1, max_value=32),
    accesses=st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200),
)
@settings(max_examples=100, deadline=None)
def test_lru_inclusion_property(limit, accesses):
    """A larger cache never faults more than a smaller one (LRU is a
    stack algorithm)."""
    def run(lim):
        mem = Memory(total_pages=1000)
        space = mem.create_space(resident_limit=lim)
        space.alloc_range(0, 64)
        return space.touch(accesses)

    small = run(limit)
    big = run(limit + 8)
    assert big <= small
