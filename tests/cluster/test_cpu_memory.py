"""Tests for the CPU and memory models."""

import pytest

from repro.cluster import CPU, Memory, MemoryError_
from repro.sim import Simulator


# ------------------------------------------------------------------- CPU


def test_cpu_executes_work_at_speed():
    sim = Simulator()
    cpu = CPU(sim, speed=200.0)
    job = cpu.execute(100.0)
    sim.run()
    assert job.done.value == pytest.approx(0.5)


def test_cpu_contention_halves_rate():
    sim = Simulator()
    cpu = CPU(sim, speed=100.0)
    a = cpu.execute(100.0)
    b = cpu.execute(100.0)
    sim.run()
    assert a.done.value == pytest.approx(2.0)
    assert b.done.value == pytest.approx(2.0)


def test_cpu_cap_models_sandbox_share():
    sim = Simulator()
    cpu = CPU(sim, speed=100.0)
    # A 40% share cap: even alone, the job gets 40 units/s.
    job = cpu.execute(80.0, cap=0.4 * cpu.speed)
    sim.run()
    assert job.done.value == pytest.approx(2.0)


def test_cpu_set_speed():
    sim = Simulator()
    cpu = CPU(sim, speed=100.0)
    cpu.set_speed(50.0)
    job = cpu.execute(100.0)
    sim.run()
    assert job.done.value == pytest.approx(2.0)


def test_cpu_utilization_accounting():
    sim = Simulator()
    cpu = CPU(sim, speed=100.0)
    snap = cpu.snapshot()
    cpu.execute(30.0)

    def observe():
        yield sim.timeout(1.0)
        return cpu.utilization_since(*snap)

    proc = sim.process(observe())
    sim.run()
    assert proc.value == pytest.approx(0.3)


# ---------------------------------------------------------------- Memory


def test_memory_space_reservation():
    mem = Memory(total_pages=100)
    a = mem.create_space(resident_limit=60)
    assert mem.reserved_pages == 60
    assert mem.free_pages == 40
    with pytest.raises(MemoryError_):
        mem.create_space(resident_limit=50)
    mem.release_space(a)
    assert mem.free_pages == 100


def test_memory_validation():
    with pytest.raises(MemoryError_):
        Memory(total_pages=0)
    mem = Memory(total_pages=10)
    with pytest.raises(MemoryError_):
        mem.create_space(resident_limit=0)


def test_touch_within_limit_faults_once_per_page():
    mem = Memory(total_pages=100)
    space = mem.create_space(resident_limit=10)
    space.alloc_range(0, 5)
    assert space.touch_range(0, 5) == 5  # cold faults
    assert space.touch_range(0, 5) == 0  # warm
    assert space.resident_pages == 5


def test_touch_beyond_limit_evicts_lru():
    mem = Memory(total_pages=100)
    space = mem.create_space(resident_limit=3)
    space.alloc_range(0, 5)
    assert space.touch([0, 1, 2]) == 3
    # Touching page 3 evicts page 0 (LRU).
    assert space.touch([3]) == 1
    assert space.touch([0]) == 1  # page 0 faulted back in, evicting 1
    assert space.touch([2, 3]) == 0  # still resident
    assert space.resident_pages == 3


def test_repeated_sweep_over_working_set_larger_than_limit():
    """Sequential sweeps over N pages with limit < N fault on every page."""
    mem = Memory(total_pages=100)
    space = mem.create_space(resident_limit=4)
    space.alloc_range(0, 8)
    assert space.touch_range(0, 8) == 8
    # LRU + sequential sweep = pathological: all faults again.
    assert space.touch_range(0, 8) == 8
    assert space.fault_count == 16


def test_touch_unallocated_page_raises():
    mem = Memory(total_pages=100)
    space = mem.create_space(resident_limit=4)
    with pytest.raises(MemoryError_):
        space.touch([7])


def test_shrink_resident_limit_evicts():
    mem = Memory(total_pages=100)
    space = mem.create_space(resident_limit=5)
    space.alloc_range(0, 5)
    space.touch_range(0, 5)
    space.set_resident_limit(2)
    assert space.resident_pages == 2
    assert mem.reserved_pages == 2


def test_grow_resident_limit_bounded_by_physical():
    mem = Memory(total_pages=10)
    space = mem.create_space(resident_limit=5)
    mem.create_space(resident_limit=4)
    with pytest.raises(MemoryError_):
        space.set_resident_limit(7)
    space.set_resident_limit(6)
    assert mem.free_pages == 0


def test_free_pages_removes_resident():
    mem = Memory(total_pages=100)
    space = mem.create_space(resident_limit=5)
    space.alloc_range(0, 3)
    space.touch_range(0, 3)
    space.free([0, 1])
    assert space.resident_pages == 1
    assert space.allocated_pages == 1
    # Freed pages must be re-allocated before touching.
    with pytest.raises(MemoryError_):
        space.touch([0])
