"""End-to-end adaptation: monitor -> scheduler -> steering on a live app.

A miniature Experiment 1: the client downloads images while the testbed
drops its bandwidth limit mid-run; the controller must detect the drop,
consult the database, and switch the compression configuration at a round
boundary (notifying the server through the transition handler).
"""


from repro.apps.visualization import VizCosts, VizWorkload, make_viz_app
from repro.profiling import PerformanceDatabase, Record, ResourcePoint
from repro.runtime import (
    AdaptationController,
    Objective,
    ResourceScheduler,
    SteeringAgent,
    ControlMessage,
    UserPreference,
)
from repro.sandbox import ResourceLimits, Testbed
from repro.tunable import Configuration, Preprocessor


def cfg(c):
    return Configuration({"dR": 320, "c": c, "l": 4})


def small_crossover_db():
    """Hand-built DB: lzw best at >=200 KB/s, bzip2 best below."""
    db = PerformanceDatabase("active-visualization", ["client.cpu", "client.network"])
    samples = {
        ("lzw", 50e3): 55.0,
        ("lzw", 200e3): 14.0,
        ("lzw", 500e3): 6.5,
        ("bzip2", 50e3): 36.0,
        ("bzip2", 200e3): 12.0,
        ("bzip2", 500e3): 10.0,
    }
    for (codec, bw), t in samples.items():
        db.add(
            Record(
                cfg(codec),
                ResourcePoint({"client.cpu": 1.0, "client.network": bw}),
                {"transmit_time": t, "response_time": t / 4, "resolution": 4.0},
            )
        )
    return db


def run_e2e(adaptive=True, n_images=8, drop_at=14.0):
    app = make_viz_app()
    db = small_crossover_db()
    scheduler = ResourceScheduler(
        db, UserPreference.single(Objective("transmit_time"))
    )
    controller = AdaptationController(
        scheduler,
        monitoring_plan=Preprocessor(app).monitoring_plan(),
        monitor_kwargs={"window": 2.0, "cooldown": 4.0},
    )
    initial_point = ResourcePoint({"client.cpu": 1.0, "client.network": 500e3})
    decision = controller.select_initial(initial_point)

    testbed = Testbed(host_specs=app.env.host_specs(), link_specs=app.env.link_specs())
    workload = VizWorkload(n_images=n_images, costs=VizCosts(display_cost=3e-5))
    rt = app.instantiate(
        testbed,
        decision.config,
        limits={"client": ResourceLimits(net_bw=500e3)},
        workload=workload,
    )
    if adaptive:
        controller.attach(rt)

    def vary():
        yield testbed.sim.timeout(drop_at)
        rt.sandboxes["client"].set_limits(ResourceLimits(net_bw=50e3))

    testbed.sim.process(vary())
    testbed.run(until=5000)
    testbed.shutdown()
    assert rt.finished.triggered
    return controller, rt, workload


def test_initial_configuration_uses_database():
    controller, rt, _ = run_e2e(adaptive=False)
    # At 500 KB/s the database says lzw (6.5 < 10.0).
    assert controller.current_decision.config == cfg("lzw")


def test_adaptation_switches_to_bzip2_after_bandwidth_drop():
    controller, rt, workload = run_e2e()
    assert rt.controls.current == cfg("bzip2")
    switches = rt.controls.history
    assert len(switches) == 1
    t_switch, old, new = switches[0]
    assert (old.c, new.c) == ("lzw", "bzip2")
    assert t_switch > 14.0  # after the drop
    kinds = [e.kind for e in controller.events]
    assert kinds[:3] == ["initial", "trigger", "decision"]
    assert "applied" in kinds


def test_adaptive_beats_static_initial_choice():
    _, rt_adaptive, wl_adaptive = run_e2e()
    # Static run with the same initial (lzw) configuration throughout.
    app = make_viz_app()
    testbed = Testbed(host_specs=app.env.host_specs(), link_specs=app.env.link_specs())
    workload = VizWorkload(n_images=8, costs=VizCosts(display_cost=3e-5))
    rt_static = app.instantiate(
        testbed,
        cfg("lzw"),
        limits={"client": ResourceLimits(net_bw=500e3)},
        workload=workload,
    )

    def vary():
        yield testbed.sim.timeout(14.0)
        rt_static.sandboxes["client"].set_limits(ResourceLimits(net_bw=50e3))

    testbed.sim.process(vary())
    testbed.run(until=5000)
    assert rt_static.finished.triggered
    total_adaptive = wl_adaptive.image_times[-1][0]
    total_static = workload.image_times[-1][0]
    assert total_adaptive < total_static * 0.85


def test_server_was_notified_of_codec_change():
    """After the switch, replies really are bzip2-compressed (smaller)."""
    _, rt, workload = run_e2e()
    durations = [d for _, d in workload.image_times]
    # Post-switch images are faster than the static-lzw low-bandwidth rate
    # of ~55 s -> the server must be producing bzip2 payloads.
    assert durations[-1] < 45.0


def test_steering_agent_records_messages_and_acks():
    app = make_viz_app()
    db = small_crossover_db()
    scheduler = ResourceScheduler(db, UserPreference.single(Objective("transmit_time")))
    testbed = Testbed(host_specs=app.env.host_specs(), link_specs=app.env.link_specs())
    workload = VizWorkload(n_images=2, costs=VizCosts(display_cost=3e-5))
    rt = app.instantiate(
        testbed, cfg("lzw"),
        limits={"client": ResourceLimits(net_bw=500e3)}, workload=workload,
    )
    agent = SteeringAgent(rt, control_latency=0.01)
    decision = scheduler.select(
        ResourcePoint({"client.cpu": 1.0, "client.network": 50e3})
    )
    outcomes = []
    agent.deliver(ControlMessage(decision=decision, on_applied=outcomes.append))
    testbed.run(until=5000)
    assert outcomes == [True]
    assert len(agent.received) == 1
    assert len(agent.acks) == 1
    assert agent.acks[0][1] == cfg("bzip2")
    assert agent.switches[0][2] == cfg("bzip2")
