"""Property-based tests for the resource scheduler over random databases."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.profiling import PerformanceDatabase, Record, ResourcePoint
from repro.runtime import Objective, ResourceScheduler, UserPreference
from repro.tunable import Configuration, MetricRange

LEVELS = (0.1, 0.4, 0.7, 1.0)

db_strategy = st.lists(
    st.lists(
        st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
        min_size=len(LEVELS),
        max_size=len(LEVELS),
    ),
    min_size=1,
    max_size=6,
)


def build_db(tables):
    db = PerformanceDatabase("prop", ["node.cpu"])
    for i, row in enumerate(tables):
        for level, value in zip(LEVELS, row):
            db.add(
                Record(
                    Configuration({"variant": i}),
                    ResourcePoint({"node.cpu": level}),
                    {"t": value},
                )
            )
    return db


@given(tables=db_strategy, level=st.sampled_from(LEVELS))
@settings(max_examples=100, deadline=None)
def test_selected_config_minimizes_objective_at_sampled_points(tables, level):
    db = build_db(tables)
    sched = ResourceScheduler(db, UserPreference.single(Objective("t")))
    decision = sched.select(ResourcePoint({"node.cpu": level}))
    assert decision is not None
    chosen = decision.predicted["t"]
    for config in db.configurations():
        other = db.predict(config, ResourcePoint({"node.cpu": level}), "t")
        assert chosen <= other + 1e-9


@given(tables=db_strategy, level=st.sampled_from(LEVELS))
@settings(max_examples=100, deadline=None)
def test_maximize_mirror(tables, level):
    db = build_db(tables)
    sched = ResourceScheduler(db, UserPreference.single(Objective("t", "maximize")))
    decision = sched.select(ResourcePoint({"node.cpu": level}))
    chosen = decision.predicted["t"]
    for config in db.configurations():
        other = db.predict(config, ResourcePoint({"node.cpu": level}), "t")
        assert chosen >= other - 1e-9


@given(
    tables=db_strategy,
    level=st.sampled_from(LEVELS),
    hi=st.floats(min_value=0.5, max_value=120.0),
)
@settings(max_examples=100, deadline=None)
def test_range_pruning_never_selects_infeasible(tables, level, hi):
    db = build_db(tables)
    pref = UserPreference.single(Objective("t"), [MetricRange("t", hi=hi)])
    sched = ResourceScheduler(db, pref)
    decision = sched.select(ResourcePoint({"node.cpu": level}))
    if decision is None:
        # Then truly nothing is feasible at this point.
        for config in db.configurations():
            predicted = db.predict(config, ResourcePoint({"node.cpu": level}), "t")
            assert predicted > hi
    else:
        assert decision.predicted["t"] <= hi + 1e-9


@given(tables=db_strategy)
@settings(max_examples=60, deadline=None)
def test_exclusion_is_respected(tables):
    db = build_db(tables)
    sched = ResourceScheduler(db, UserPreference.single(Objective("t")))
    point = ResourcePoint({"node.cpu": 0.7})
    excluded = set()
    # Repeatedly exclude the winner: each next decision avoids them all,
    # and eventually select() returns None.
    for _ in range(len(db.configurations())):
        decision = sched.select(point, exclude=excluded)
        assert decision is not None
        assert decision.config not in excluded
        excluded.add(decision.config)
    assert sched.select(point, exclude=excluded) is None


@given(tables=db_strategy, query=st.floats(min_value=0.1, max_value=1.0))
@settings(max_examples=60, deadline=None)
def test_interpolated_prediction_within_sample_envelope(tables, query):
    """1-D linear interpolation stays within each config's min/max samples."""
    db = build_db(tables)
    for i, row in enumerate(tables):
        predicted = db.predict(
            Configuration({"variant": i}), ResourcePoint({"node.cpu": query}), "t"
        )
        assert min(row) - 1e-9 <= predicted <= max(row) + 1e-9
