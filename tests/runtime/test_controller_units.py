"""Unit tests for controller negotiation, no-candidate handling, and
steering-agent corner cases."""

import pytest

from repro.profiling import PerformanceDatabase, Record, ResourcePoint
from repro.runtime import (
    AdaptationController,
    Objective,
    ResourceScheduler,
    UserPreference,
)
from repro.sandbox import ResourceLimits, Testbed
from repro.tunable import (
    ConfigSpace,
    Configuration,
    ControlParameter,
    ExecutionEnv,
    HostComponent,
    MetricRange,
    QoSMetric,
    TaskGraph,
    TaskSpec,
    TransitionSpec,
    TunableApp,
)


def guarded_app(forbidden_modes=()):
    """App whose transition guard refuses switches into `forbidden_modes`."""
    space = ConfigSpace([ControlParameter("mode", ("a", "b", "c"))])
    env = ExecutionEnv([HostComponent("node", cpu_speed=100.0)])
    transitions = (
        TransitionSpec(
            guard=lambda old, new: new["mode"] not in forbidden_modes,
            name="refuse-forbidden",
        ),
    )

    def launcher(rt):
        def main():
            sb = rt.sandbox("node")
            for _ in range(4000):
                yield from rt.controls.apply(rt, rt.sim.now)
                yield sb.compute(0.5)
            rt.qos.update("done", 1.0)

        return rt.sim.process(main())

    return TunableApp(
        "guarded", space, env,
        metrics=[QoSMetric("done")],
        tasks=TaskGraph([TaskSpec("spin", params=("mode",), resources=("node.cpu",))]),
        transitions=transitions,
        launcher=launcher,
    )


def mode_db():
    """'a' best at high cpu; 'b' best at low cpu; 'c' slightly worse than b."""
    db = PerformanceDatabase("guarded", ["node.cpu"])
    perf = {
        "a": lambda s: 1.0 / s,          # 1.0 at s=1, 10 at s=0.1
        "b": lambda s: 3.0 + 0.2 / s,    # 3.2..5
        "c": lambda s: 3.3 + 0.2 / s,
    }
    for mode, fn in perf.items():
        for s in (0.1, 0.3, 0.6, 1.0):
            db.add(Record(Configuration({"mode": mode}),
                          ResourcePoint({"node.cpu": s}), {"t": fn(s)}))
    return db


def run_guarded(forbidden, drop_to=0.1, until=40.0):
    app = guarded_app(forbidden_modes=forbidden)
    scheduler = ResourceScheduler(db := mode_db(), UserPreference.single(Objective("t")))
    controller = AdaptationController(
        scheduler, monitor_kwargs={"window": 0.5, "cooldown": 2.0}
    )
    decision = controller.select_initial(ResourcePoint({"node.cpu": 1.0}))
    tb = Testbed(host_specs=app.env.host_specs())
    rt = app.instantiate(
        tb, decision.config, limits={"node": ResourceLimits(cpu_share=1.0)}
    )
    controller.attach(rt)

    def vary():
        yield tb.sim.timeout(5.0)
        rt.sandboxes["node"].set_limits(ResourceLimits(cpu_share=drop_to))

    tb.sim.process(vary())
    tb.run(until=until)
    return controller, rt


def test_negotiation_falls_back_when_guard_rejects():
    """Guard refuses 'b'; negotiation must land on 'c' (next best)."""
    controller, rt = run_guarded(forbidden={"b"})
    kinds = [e.kind for e in controller.events]
    assert "rejected" in kinds
    assert rt.controls.current == Configuration({"mode": "c"})
    # The rejected decision was for 'b'.
    rejected = [e for e in controller.events if e.kind == "rejected"]
    assert rejected[0].config == Configuration({"mode": "b"})


def test_no_negotiation_needed_without_guards():
    controller, rt = run_guarded(forbidden=set())
    assert rt.controls.current == Configuration({"mode": "b"})
    assert all(e.kind != "rejected" for e in controller.events)


def test_all_alternatives_rejected_keeps_current():
    controller, rt = run_guarded(forbidden={"b", "c"})
    # Both alternatives refused; the app keeps running with 'a'.
    assert rt.controls.current == Configuration({"mode": "a"})
    kinds = [e.kind for e in controller.events]
    assert kinds.count("rejected") >= 2


def test_attach_requires_initial_decision():
    app = guarded_app()
    scheduler = ResourceScheduler(mode_db(), UserPreference.single(Objective("t")))
    controller = AdaptationController(scheduler)
    tb = Testbed(host_specs=app.env.host_specs())
    rt = app.instantiate(tb, Configuration({"mode": "a"}))
    with pytest.raises(RuntimeError, match="select_initial"):
        controller.attach(rt)


def test_select_initial_raises_when_nothing_feasible():
    db = mode_db()
    pref = UserPreference.single(
        Objective("t"), [MetricRange("t", hi=0.01)]  # impossible
    )
    controller = AdaptationController(ResourceScheduler(db, pref))
    with pytest.raises(RuntimeError, match="no configuration"):
        controller.select_initial(ResourcePoint({"node.cpu": 1.0}))


def test_no_candidate_event_logged_when_preferences_unsatisfiable():
    """After the drop, a too-strict range leaves no candidate; the
    controller logs it and keeps the current configuration."""
    app = guarded_app()
    pref = UserPreference.single(
        Objective("t"), [MetricRange("t", hi=1.5)]  # only 'a' at high cpu
    )
    scheduler = ResourceScheduler(mode_db(), pref)
    controller = AdaptationController(
        scheduler, monitor_kwargs={"window": 0.5, "cooldown": 2.0}
    )
    decision = controller.select_initial(ResourcePoint({"node.cpu": 1.0}))
    tb = Testbed(host_specs=app.env.host_specs())
    rt = app.instantiate(
        tb, decision.config, limits={"node": ResourceLimits(cpu_share=1.0)}
    )
    controller.attach(rt)

    def vary():
        yield tb.sim.timeout(5.0)
        rt.sandboxes["node"].set_limits(ResourceLimits(cpu_share=0.1))

    tb.sim.process(vary())
    tb.run(until=30.0)
    kinds = [e.kind for e in controller.events]
    assert "no-candidate" in kinds
    assert rt.controls.current == Configuration({"mode": "a"})
