"""Monitoring-agent coverage for the memory resource and retargeting."""

import pytest

from repro.apps import MemWorkload, make_membound_app
from repro.runtime import MonitoringAgent
from repro.sandbox import ResourceLimits, Testbed
from repro.tunable import Configuration


def start_membound(mem_pages=1000):
    app = make_membound_app()
    tb = Testbed(host_specs=app.env.host_specs())
    rt = app.instantiate(
        tb,
        Configuration({"tile": 128}),
        limits={"node": ResourceLimits(mem_pages=mem_pages)},
        workload=MemWorkload(sweeps=64),
        sandbox_kwargs={"fault_cost": 1e-3},
    )
    return app, tb, rt


def test_memory_estimate_reports_resident_limit():
    app, tb, rt = start_membound(mem_pages=1000)
    agent = MonitoringAgent(rt, watch=["node.memory"]).start()
    tb.run(until=1.0)
    assert agent.estimates()["node.memory"] == pytest.approx(1000.0)
    agent.stop()


def test_memory_limit_change_is_detected():
    app, tb, rt = start_membound(mem_pages=1000)
    triggers = []
    agent = MonitoringAgent(
        rt,
        watch=["node.memory"],
        window=0.2,
        on_violation=lambda est: triggers.append(est["node.memory"]),
    ).start()
    agent.retarget(conditions={"node.memory": (500.0, float("inf"))})

    def vary():
        yield tb.sim.timeout(1.0)
        rt.sandboxes["node"].set_limits(ResourceLimits(mem_pages=200))

    tb.sim.process(vary())
    tb.run(until=3.0)
    agent.stop()
    assert triggers and triggers[0] < 500.0


def test_retarget_switches_watch_list():
    app, tb, rt = start_membound()
    agent = MonitoringAgent(rt, watch=["node.cpu"]).start()
    tb.run(until=0.5)
    assert "node.memory" not in agent.estimates()
    agent.retarget(watch=["node.cpu", "node.memory"])
    tb.run(until=1.0)
    estimates = agent.estimates()
    assert "node.memory" in estimates
    assert "node.cpu" in estimates
    agent.stop()


def test_monitor_stops_with_finished_app():
    app, tb, rt = start_membound()
    rt.workload.sweeps = 64  # already set; the app will finish on its own
    agent = MonitoringAgent(rt, watch=["node.cpu"]).start()
    tb.run(until=3600)
    # The app finished and stopped the agent; the simulation drained (no
    # runaway periodic process).
    assert rt.finished.triggered
    assert tb.sim.is_idle()
