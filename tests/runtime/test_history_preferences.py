"""Tests for history windows, EWMA, and user preferences."""

import pytest

from repro.runtime import EWMA, Constraint, HistoryWindow, Objective, UserPreference
from repro.tunable import MetricRange


# ---------------------------------------------------------------- history


def test_history_mean_and_last():
    h = HistoryWindow(window=10.0)
    assert h.empty
    assert h.mean() is None
    h.record(0.0, 1.0)
    h.record(1.0, 3.0)
    assert h.mean() == pytest.approx(2.0)
    assert h.last() == 3.0
    assert h.minimum() == 1.0
    assert h.maximum() == 3.0


def test_history_trims_outside_window():
    h = HistoryWindow(window=1.0)
    h.record(0.0, 100.0)
    h.record(2.0, 1.0)
    h.record(2.5, 3.0)
    assert len(h) == 2
    assert h.mean() == pytest.approx(2.0)


def test_history_rejects_out_of_order():
    h = HistoryWindow(window=1.0)
    h.record(5.0, 1.0)
    with pytest.raises(ValueError):
        h.record(4.0, 1.0)


def test_history_invalid_window():
    with pytest.raises(ValueError):
        HistoryWindow(window=0.0)


def test_history_clear():
    h = HistoryWindow(window=1.0)
    h.record(0.0, 1.0)
    h.clear()
    assert h.empty


def test_ewma_converges():
    e = EWMA(alpha=0.5)
    assert e.value is None
    e.update(10.0)
    assert e.value == 10.0
    e.update(0.0)
    assert e.value == 5.0
    for _ in range(50):
        e.update(0.0)
    assert e.value == pytest.approx(0.0, abs=1e-10)


def test_ewma_validation_and_reset():
    with pytest.raises(ValueError):
        EWMA(alpha=0.0)
    with pytest.raises(ValueError):
        EWMA(alpha=1.5)
    e = EWMA()
    e.update(5.0)
    e.reset()
    assert e.value is None


# -------------------------------------------------------------- preferences


def test_objective_direction():
    mini = Objective("t", "minimize")
    maxi = Objective("r", "maximize")
    assert mini.better(1.0, 2.0)
    assert maxi.better(2.0, 1.0)
    assert mini.score(3.0) == -3.0
    assert maxi.score(3.0) == 3.0
    with pytest.raises(ValueError):
        Objective("t", "sideways")


def test_constraint_satisfaction():
    c = Constraint(
        Objective("t"),
        ranges=(MetricRange("t", hi=10.0), MetricRange("r", lo=3.0)),
    )
    assert c.satisfied_by({"t": 5.0, "r": 4.0})
    assert not c.satisfied_by({"t": 15.0, "r": 4.0})
    assert not c.satisfied_by({"t": 5.0})  # missing metric fails


def test_preference_ordering():
    first = Constraint(Objective("t"), name="strict")
    second = Constraint(Objective("t"), name="relaxed")
    pref = UserPreference([first, second])
    assert pref.primary.name == "strict"
    assert [c.name for c in pref] == ["strict", "relaxed"]
    assert len(pref) == 2


def test_preference_requires_constraints():
    with pytest.raises(ValueError):
        UserPreference([])


def test_preference_single_helper():
    pref = UserPreference.single(Objective("t"), [MetricRange("t", hi=1.0)])
    assert len(pref) == 1
    assert pref.primary.ranges[0].hi == 1.0
