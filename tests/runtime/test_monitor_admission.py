"""Tests for the monitoring agent, system monitor, and admission control."""

import pytest

from repro.runtime import AdmissionController, AdmissionError, MonitoringAgent, SystemMonitor
from repro.sandbox import HostSpec, ResourceLimits, Testbed
from repro.tunable import (
    ConfigSpace,
    Configuration,
    ControlParameter,
    ExecutionEnv,
    HostComponent,
    LinkComponent,
    QoSMetric,
    TaskGraph,
    TaskSpec,
    TunableApp,
)


def looping_app(rounds=2000, work_per_round=1.0):
    """Client computes in small rounds forever (enough for monitoring)."""
    space = ConfigSpace([ControlParameter("mode", ("x",))])
    env = ExecutionEnv(
        [HostComponent("client", cpu_speed=100.0), HostComponent("server", cpu_speed=100.0)],
        [LinkComponent("client", "server", bandwidth=1e6)],
    )

    def launcher(rt):
        def main():
            sb = rt.sandbox("client")
            for _ in range(rounds):
                yield sb.compute(work_per_round)
            rt.qos.update("done", 1.0, time=rt.sim.now)

        return rt.sim.process(main())

    return TunableApp(
        name="looper",
        space=space,
        env=env,
        metrics=[QoSMetric("done")],
        tasks=TaskGraph([TaskSpec("loop", resources=("client.cpu",))]),
        launcher=launcher,
    )


def start_app(limits=None, mode="ideal"):
    app = looping_app()
    tb = Testbed(
        host_specs=app.env.host_specs(),
        link_specs=app.env.link_specs(),
        mode=mode,
    )
    rt = app.instantiate(tb, Configuration({"mode": "x"}), limits=limits or {})
    return app, tb, rt


def test_system_monitor_from_runtime():
    app, tb, rt = start_app()
    sysmon = SystemMonitor.from_runtime(rt)
    assert sysmon.capacity("client.cpu") == 100.0
    assert sysmon.capacity("client.network") == 1e6
    assert sysmon.capacity("client.memory") > 0
    with pytest.raises(KeyError):
        sysmon.capacity("ghost.cpu")


def test_monitor_estimates_cpu_share():
    app, tb, rt = start_app(limits={"client": ResourceLimits(cpu_share=0.4)})
    agent = MonitoringAgent(rt, watch=["client.cpu"]).start()
    tb.run(until=2.0)
    est = agent.estimates()["client.cpu"]
    assert est == pytest.approx(0.4, abs=0.05)
    agent.stop()


def test_monitor_estimate_tracks_limit_change():
    app, tb, rt = start_app(limits={"client": ResourceLimits(cpu_share=0.9)})
    agent = MonitoringAgent(rt, watch=["client.cpu"], window=0.3).start()

    def vary():
        yield tb.sim.timeout(2.0)
        rt.sandboxes["client"].set_limits(ResourceLimits(cpu_share=0.3))

    tb.sim.process(vary())
    tb.run(until=1.9)
    before = agent.estimates()["client.cpu"]
    tb.run(until=4.0)
    after = agent.estimates()["client.cpu"]
    agent.stop()
    assert before == pytest.approx(0.9, abs=0.05)
    assert after == pytest.approx(0.3, abs=0.05)


def test_monitor_violation_triggers_once_per_cooldown():
    app, tb, rt = start_app(limits={"client": ResourceLimits(cpu_share=0.9)})
    triggers = []
    agent = MonitoringAgent(
        rt,
        watch=["client.cpu"],
        window=0.3,
        cooldown=10.0,
        on_violation=lambda est: triggers.append((tb.sim.now, est["client.cpu"])),
    ).start()
    agent.retarget(conditions={"client.cpu": (0.6, float("inf"))})

    def vary():
        yield tb.sim.timeout(1.0)
        rt.sandboxes["client"].set_limits(ResourceLimits(cpu_share=0.3))

    tb.sim.process(vary())
    tb.run(until=4.0)
    agent.stop()
    assert len(triggers) == 1  # cooldown suppresses repeats
    t, est = triggers[0]
    assert 1.0 < t < 2.0  # detected soon after the drop
    assert est < 0.6


def test_monitor_no_trigger_within_conditions():
    app, tb, rt = start_app(limits={"client": ResourceLimits(cpu_share=0.9)})
    triggers = []
    agent = MonitoringAgent(
        rt,
        watch=["client.cpu"],
        on_violation=lambda est: triggers.append(est),
    ).start()
    agent.retarget(conditions={"client.cpu": (0.5, float("inf"))})
    tb.run(until=3.0)
    agent.stop()
    assert triggers == []


def test_monitor_network_estimate():
    """Effective bandwidth seen by a shaped receiver ~= the sandbox limit."""
    space = ConfigSpace([ControlParameter("mode", ("x",))])
    env = ExecutionEnv(
        [HostComponent("client", cpu_speed=100.0), HostComponent("server", cpu_speed=100.0)],
        [LinkComponent("client", "server", bandwidth=1e7)],
    )

    def launcher(rt):
        def server():
            ssb = rt.sandbox("server")
            for _ in range(20):
                msg = yield ssb.recv("req")
                yield ssb.send("client", "data", None, size=50_000.0)

        def client():
            csb = rt.sandbox("client")
            for _ in range(20):
                yield csb.send("server", "req", None, size=100.0)
                yield csb.recv("data")
            rt.qos.update("done", 1.0)

        rt.sim.process(server())
        return rt.sim.process(client())

    app = TunableApp(
        "netapp", space, env,
        metrics=[QoSMetric("done")],
        tasks=TaskGraph([TaskSpec("xfer", resources=("client.network",))]),
        launcher=launcher,
    )
    tb = Testbed(host_specs=env.host_specs(), link_specs=env.link_specs())
    rt = app.instantiate(
        tb, Configuration({"mode": "x"}),
        limits={"client": ResourceLimits(net_bw=100_000.0)},
    )
    agent = MonitoringAgent(rt, watch=["client.network"], window=5.0).start()
    tb.run()
    est = agent.estimates()["client.network"]
    # Each 50 kB reply is shaped to ~0.5 s -> effective ~1e5 B/s.
    assert est == pytest.approx(100_000.0, rel=0.25)


def test_monitor_validation():
    app, tb, rt = start_app()
    with pytest.raises(ValueError):
        MonitoringAgent(rt, watch=["client.cpu"], period=0.0)


# ------------------------------------------------------------- admission


def test_admission_threshold():
    tb = Testbed(host_specs=[HostSpec("h", 100.0)])
    host = tb.hosts["h"]
    ac = AdmissionController(cpu_threshold=0.9)
    r1 = ac.admit(host, ResourceLimits(cpu_share=0.5))
    r2 = ac.admit(host, ResourceLimits(cpu_share=0.4))
    assert ac.cpu_reserved(host) == pytest.approx(0.9)
    with pytest.raises(AdmissionError):
        ac.admit(host, ResourceLimits(cpu_share=0.1))
    assert ac.rejections == 1
    ac.release(r1)
    ac.admit(host, ResourceLimits(cpu_share=0.1))  # now fits


def test_admission_bandwidth_capacity():
    tb = Testbed(host_specs=[HostSpec("h", 100.0)])
    host = tb.hosts["h"]
    ac = AdmissionController(bw_capacity={"h": 1000.0})
    ac.admit(host, ResourceLimits(net_bw=800.0))
    with pytest.raises(AdmissionError):
        ac.admit(host, ResourceLimits(net_bw=300.0))


def test_admission_memory_bounded_by_physical():
    tb = Testbed(host_specs=[HostSpec("h", 100.0, mem_pages=100)])
    host = tb.hosts["h"]
    ac = AdmissionController()
    ac.admit(host, ResourceLimits(mem_pages=80))
    with pytest.raises(AdmissionError):
        ac.admit(host, ResourceLimits(mem_pages=30))


def test_admitted_sandboxes_are_isolated():
    """Reservation-backed sandboxes each get their promised share."""
    tb = Testbed(host_specs=[HostSpec("h", 100.0)])
    host = tb.hosts["h"]
    ac = AdmissionController()
    r1 = ac.admit(host, ResourceLimits(cpu_share=0.25), name="a")
    r2 = ac.admit(host, ResourceLimits(cpu_share=0.25), name="b")
    done = {}

    def run(tag, sandbox):
        yield sandbox.compute(25.0)
        done[tag] = tb.sim.now

    tb.sim.process(run("a", r1.sandbox))
    tb.sim.process(run("b", r2.sandbox))
    tb.run()
    assert done["a"] == pytest.approx(1.0)
    assert done["b"] == pytest.approx(1.0)


def test_admission_validation():
    with pytest.raises(ValueError):
        AdmissionController(cpu_threshold=0.0)
