"""Additional end-to-end adaptation scenarios.

- preference fallback at run time (primary level becomes infeasible);
- competition-induced CPU loss detected without any sandbox change;
- profiling-driver timeout handling.
"""

import pytest

from repro.cluster import BackgroundLoad
from repro.profiling import (
    PerformanceDatabase,
    ProfilingDriver,
    Record,
    ResourceDimension,
    ResourcePoint,
)
from repro.runtime import (
    AdaptationController,
    Constraint,
    MonitoringAgent,
    Objective,
    ResourceScheduler,
    UserPreference,
)
from repro.sandbox import ResourceLimits, Testbed
from repro.sim import stream
from repro.tunable import (
    ConfigSpace,
    Configuration,
    ControlParameter,
    ExecutionEnv,
    HostComponent,
    MetricRange,
    QoSMetric,
    TaskGraph,
    TaskSpec,
    TunableApp,
)


def spin_app(rounds=20000):
    space = ConfigSpace([ControlParameter("mode", ("hi", "lo"))])
    env = ExecutionEnv([HostComponent("node", cpu_speed=100.0)])

    def launcher(rt):
        def main():
            sb = rt.sandbox("node")
            for _ in range(rounds):
                yield from rt.controls.apply(rt, rt.sim.now)
                yield sb.compute(0.5)
            rt.qos.update("done", 1.0)

        return rt.sim.process(main())

    return TunableApp(
        "spin", space, env,
        metrics=[QoSMetric("done"), QoSMetric("quality", better="higher"),
                 QoSMetric("t")],
        tasks=TaskGraph([TaskSpec("spin", params=("mode",), resources=("node.cpu",))]),
        launcher=launcher,
    )


def two_level_db():
    """'hi' only works with cpu >= ~0.7; 'lo' works anywhere but is worse."""
    db = PerformanceDatabase("spin", ["node.cpu"])
    for cpu in (0.1, 0.4, 0.7, 1.0):
        db.add(Record(Configuration({"mode": "hi"}),
                      ResourcePoint({"node.cpu": cpu}),
                      {"t": 2.0 / cpu, "quality": 10.0, "done": 1.0}))
        db.add(Record(Configuration({"mode": "lo"}),
                      ResourcePoint({"node.cpu": cpu}),
                      {"t": 0.5 / cpu, "quality": 3.0, "done": 1.0}))
    return db


def test_runtime_preference_fallback():
    """Primary constraint (t <= 3, maximize quality) feasible at start;
    after the CPU drop only the relaxed secondary (minimize t) is."""
    db = two_level_db()
    primary = Constraint(
        Objective("quality", "maximize"), (MetricRange("t", hi=3.0),), name="strict"
    )
    secondary = Constraint(Objective("t"), name="besteffort")
    scheduler = ResourceScheduler(db, UserPreference([primary, secondary]))
    controller = AdaptationController(
        scheduler, monitor_kwargs={"window": 0.5, "cooldown": 2.0}
    )
    decision = controller.select_initial(ResourcePoint({"node.cpu": 1.0}))
    assert decision.config.mode == "hi"
    assert decision.constraint.name == "strict"

    app = spin_app()
    tb = Testbed(host_specs=app.env.host_specs())
    rt = app.instantiate(
        tb, decision.config, limits={"node": ResourceLimits(cpu_share=1.0)}
    )
    controller.attach(rt)

    def vary():
        yield tb.sim.timeout(5.0)
        rt.sandboxes["node"].set_limits(ResourceLimits(cpu_share=0.1))

    tb.sim.process(vary())
    tb.run(until=60.0)
    # At 10% CPU: hi.t = 20 > 3, lo.t = 5 > 3 -> strict infeasible; the
    # scheduler falls through to best-effort and picks 'lo'.
    assert rt.controls.current.mode == "lo"
    assert controller.current_decision.constraint.name == "besteffort"
    assert controller.current_decision.constraint_index == 1


def test_monitor_detects_competition_induced_cpu_loss():
    """Daemon competition (no sandbox change) shrinks the achieved share
    and the agent reports it — the paper's shared-environment case."""
    app = spin_app()
    tb = Testbed(host_specs=app.env.host_specs())
    rt = app.instantiate(tb, Configuration({"mode": "hi"}))
    agent = MonitoringAgent(rt, watch=["node.cpu"], window=1.0).start()
    tb.run(until=2.0)
    before = agent.estimates()["node.cpu"]

    # Heavy competitor arrives: an equal-weight daemon demanding the full
    # CPU drives the app toward a fair half share.
    daemon = BackgroundLoad(
        tb.hosts["node"], stream(5, "compete"),
        mean_interval=0.02, burst_work=2.0,
    )
    tb.run(until=8.0)
    after = agent.estimates()["node.cpu"]
    daemon.stop()
    agent.stop()
    assert before == pytest.approx(1.0, abs=0.05)
    assert after < 0.7  # deterministic: ~0.654 with this seed


def test_driver_raises_on_unfinished_run():
    app = spin_app(rounds=10**6)
    dims = [ResourceDimension("node.cpu", (1.0,), lo=0.01, hi=1.0)]
    driver = ProfilingDriver(app, dims, max_run_time=1.0)
    with pytest.raises(RuntimeError, match="did not finish"):
        driver.measure(
            Configuration({"mode": "hi"}), ResourcePoint({"node.cpu": 1.0})
        )
