"""Tests for distributed monitor exchange and system-wide scheduling."""

import pytest

from repro.profiling import PerformanceDatabase, Record, ResourcePoint
from repro.runtime import (
    MonitorExchange,
    MonitoringAgent,
    Objective,
    PlacementError,
    ResourceScheduler,
    SystemScheduler,
    UserPreference,
)
from repro.sandbox import HostSpec, ResourceLimits, Testbed
from repro.tunable import (
    ConfigSpace,
    Configuration,
    ControlParameter,
    ExecutionEnv,
    HostComponent,
    LinkComponent,
    QoSMetric,
    TaskGraph,
    TaskSpec,
    TunableApp,
)


def two_host_app(rounds=5000):
    """Client and server both burn CPU in small rounds (so both sides'
    monitoring agents produce estimates)."""
    space = ConfigSpace([ControlParameter("mode", ("x",))])
    env = ExecutionEnv(
        [HostComponent("client", cpu_speed=100.0), HostComponent("server", cpu_speed=100.0)],
        [LinkComponent("client", "server", bandwidth=1e6, latency=0.0005)],
    )

    def launcher(rt):
        def spin(host):
            sb = rt.sandbox(host)
            for _ in range(rounds):
                yield sb.compute(0.5)

        rt.sim.process(spin("server"))

        def client_main():
            yield from spin("client")
            rt.qos.update("done", 1.0)

        return rt.sim.process(client_main())

    return TunableApp(
        "twohost", space, env,
        metrics=[QoSMetric("done")],
        tasks=TaskGraph([TaskSpec("spin", resources=("client.cpu", "server.cpu"))]),
        launcher=launcher,
    )


# ------------------------------------------------------------- exchange


def test_exchange_propagates_remote_estimates():
    app = two_host_app()
    tb = Testbed(host_specs=app.env.host_specs(), link_specs=app.env.link_specs())
    rt = app.instantiate(
        tb,
        Configuration({"mode": "x"}),
        limits={
            "client": ResourceLimits(cpu_share=0.8),
            "server": ResourceLimits(cpu_share=0.3),
        },
    )
    client_agent = MonitoringAgent(rt, watch=["client.cpu"]).start()
    server_agent = MonitoringAgent(rt, watch=["server.cpu"]).start()
    client_ex = MonitorExchange(rt, client_agent, "client", ["server"]).start()
    server_ex = MonitorExchange(rt, server_agent, "server", ["client"]).start()
    tb.run(until=5.0)
    client_agent.stop(); server_agent.stop()
    client_ex.stop(); server_ex.stop()
    # The client-side exchange learned the server's CPU availability.
    merged = client_ex.global_estimates()
    assert merged["client.cpu"] == pytest.approx(0.8, abs=0.05)
    assert merged["server.cpu"] == pytest.approx(0.3, abs=0.05)
    assert client_ex.updates_received > 0
    assert server_ex.updates_sent > 0


def test_exchange_filters_insignificant_updates():
    app = two_host_app()
    tb = Testbed(host_specs=app.env.host_specs(), link_specs=app.env.link_specs())
    rt = app.instantiate(
        tb, Configuration({"mode": "x"}),
        limits={"server": ResourceLimits(cpu_share=0.5)},
    )
    server_agent = MonitoringAgent(rt, watch=["server.cpu"]).start()
    exchange = MonitorExchange(
        rt, server_agent, "server", ["client"], period=0.1, significance=0.10
    ).start()
    tb.run(until=5.0)
    server_agent.stop(); exchange.stop()
    # A steady estimate publishes once (plus at most a couple of warm-up
    # updates while the window fills), not every period (50 periods).
    assert 1 <= exchange.updates_sent <= 5


def test_exchange_validation():
    app = two_host_app()
    tb = Testbed(host_specs=app.env.host_specs(), link_specs=app.env.link_specs())
    rt = app.instantiate(tb, Configuration({"mode": "x"}))
    agent = MonitoringAgent(rt, watch=["client.cpu"])
    with pytest.raises(ValueError):
        MonitorExchange(rt, agent, "client", ["server"], period=0.0)


# ------------------------------------------------------ system scheduler


def crossover_db():
    """Two configs: 'big' needs 0.6 CPU for t=2; 'small' needs 0.2 for t=5."""
    db = PerformanceDatabase("app", ["node.cpu"])
    for cpu in (0.1, 0.3, 0.6, 0.9):
        db.add(Record(Configuration({"size": "big"}),
                      ResourcePoint({"node.cpu": cpu}), {"t": 1.2 / cpu}))
        db.add(Record(Configuration({"size": "small"}),
                      ResourcePoint({"node.cpu": cpu}), {"t": 1.0 / cpu + 3.0}))
    return db


def needs_for(decision):
    share = 0.6 if decision.config.size == "big" else 0.2
    return {"node": ResourceLimits(cpu_share=share)}


def make_system():
    tb = Testbed(host_specs=[HostSpec("node", 100.0)])
    system = SystemScheduler(tb.hosts, cpu_threshold=0.9)
    return tb, system


def scheduler():
    return ResourceScheduler(
        crossover_db(), UserPreference.single(Objective("t"))
    )


def test_first_arrival_gets_best_config():
    tb, system = make_system()
    placement = system.place("app1", scheduler(), needs_for)
    assert placement.config.size == "big"
    assert system.free_cpu("node") == pytest.approx(0.3)


def test_later_arrival_degrades_to_fit():
    """Tunability lets the second app run where a rigid app could not."""
    tb, system = make_system()
    system.place("app1", scheduler(), needs_for)
    second = system.place("app2", scheduler(), needs_for)
    # 0.3 CPU left: 'big' (needs 0.6) is excluded, 'small' (0.2) fits.
    assert second.config.size == "small"
    assert system.free_cpu("node") == pytest.approx(0.1)


def test_placement_error_when_nothing_fits():
    tb, system = make_system()
    system.place("app1", scheduler(), needs_for)
    system.place("app2", scheduler(), needs_for)
    with pytest.raises(PlacementError):
        system.place("app3", scheduler(), needs_for)


def test_release_frees_capacity():
    tb, system = make_system()
    p1 = system.place("app1", scheduler(), needs_for)
    system.release(p1)
    assert system.free_cpu("node") == pytest.approx(0.9)
    again = system.place("app2", scheduler(), needs_for)
    assert again.config.size == "big"


def test_placement_reservations_enforce_shares():
    """Admitted sandboxes actually constrain execution."""
    tb, system = make_system()
    p1 = system.place("app1", scheduler(), needs_for)
    p2 = system.place("app2", scheduler(), needs_for)
    done = {}

    def run(tag, sandbox, work):
        yield sandbox.compute(work)
        done[tag] = tb.sim.now

    tb.sim.process(run("big", p1.reservations["node"].sandbox, 60.0))
    tb.sim.process(run("small", p2.reservations["node"].sandbox, 20.0))
    tb.run()
    assert done["big"] == pytest.approx(1.0)    # 60 work at 0.6*100
    assert done["small"] == pytest.approx(1.0)  # 20 work at 0.2*100


def test_available_point_reflects_reservations():
    tb, system = make_system()
    dims = ["node.cpu"]
    assert system.available_point(dims)["node.cpu"] == pytest.approx(0.9)
    system.place("app1", scheduler(), needs_for)
    assert system.available_point(dims)["node.cpu"] == pytest.approx(0.3)
