"""Tests for the resource scheduler."""

import math

import pytest

from repro.profiling import PerformanceDatabase, Record, ResourcePoint
from repro.runtime import (
    Constraint,
    Objective,
    ResourceScheduler,
    SchedulerError,
    UserPreference,
)
from repro.tunable import Configuration, MetricRange


def cfg(**kw):
    return Configuration(kw)


def pt(cpu):
    return ResourcePoint({"client.cpu": cpu})


def crossover_db():
    """A (fast but fragile) vs B (slow but robust) with crossover at ~0.5.

    metric t (minimize):   A: t = 1/cpu        B: t = 2 + 0.5/cpu
    metric r (maximize):   A: r = 4            B: r = 3
    """
    db = PerformanceDatabase("app", ["client.cpu"])
    for cpu in (0.1, 0.2, 0.4, 0.6, 0.8, 1.0):
        db.add(Record(cfg(c="A"), pt(cpu), {"t": 1.0 / cpu, "r": 4.0}))
        db.add(Record(cfg(c="B"), pt(cpu), {"t": 2.0 + 0.5 / cpu, "r": 3.0}))
    return db


def test_select_optimizes_objective():
    db = crossover_db()
    sched = ResourceScheduler(db, UserPreference.single(Objective("t")))
    # At cpu=1.0: A gives 1.0, B gives 2.5 -> A.
    decision = sched.select(pt(1.0))
    assert decision.config == cfg(c="A")
    # At cpu=0.1: A gives 10, B gives 7 -> B.
    decision = sched.select(pt(0.1))
    assert decision.config == cfg(c="B")


def test_select_prunes_by_ranges():
    db = crossover_db()
    pref = UserPreference.single(
        Objective("r", "maximize"), [MetricRange("t", hi=3.0)]
    )
    sched = ResourceScheduler(db, pref)
    # At cpu=1.0 both satisfy t<=3; A has higher r.
    assert sched.select(pt(1.0)).config == cfg(c="A")
    # At cpu=0.25: A.t = 4 > 3 pruned; B.t = 4 > 3 pruned -> None.
    assert sched.select(pt(0.2)) is None
    # At cpu=0.5 (interpolated): A.t = 2, B.t = 3 -> both pass, pick A.
    assert sched.select(pt(0.4)).config == cfg(c="A")


def test_preference_fallback_order():
    db = crossover_db()
    strict = Constraint(
        Objective("r", "maximize"), (MetricRange("t", hi=0.5),), name="strict"
    )
    relaxed = Constraint(Objective("t"), name="relaxed")
    sched = ResourceScheduler(db, UserPreference([strict, relaxed]))
    decision = sched.select(pt(1.0))
    # Strict infeasible everywhere (min t is 1.0), falls back to relaxed.
    assert decision.constraint.name == "relaxed"
    assert decision.constraint_index == 1
    assert decision.config == cfg(c="A")


def test_exclude_forces_alternative():
    db = crossover_db()
    sched = ResourceScheduler(db, UserPreference.single(Objective("t")))
    decision = sched.select(pt(1.0), exclude={cfg(c="A")})
    assert decision.config == cfg(c="B")
    assert sched.select(pt(1.0), exclude={cfg(c="A"), cfg(c="B")}) is None


def test_interpolate_vs_nearest_modes():
    db = crossover_db()
    interp = ResourceScheduler(db, UserPreference.single(Objective("t")))
    nearest = ResourceScheduler(
        db, UserPreference.single(Objective("t")), mode="nearest"
    )
    # Interpolated prediction at cpu=0.5 for A: between 1/0.4=2.5 and
    # 1/0.6=1.667 -> ~2.08; nearest snaps to a sampled point.
    q = pt(0.5)
    interp_t = interp.predict(cfg(c="A"), q)["t"]
    nearest_t = nearest.predict(cfg(c="A"), q)["t"]
    assert interp_t == pytest.approx((2.5 + 1 / 0.6) / 2, rel=1e-6)
    assert nearest_t in (2.5, 1 / 0.6)


def test_validity_region_brackets_crossover():
    db = crossover_db()
    sched = ResourceScheduler(
        db, UserPreference.single(Objective("t")), optimality_slack=0.01
    )
    decision = sched.select(pt(1.0))
    lo, hi = decision.conditions["client.cpu"]
    # A stops being optimal somewhere between 0.2 (B wins: 7 < 10... wait at
    # 0.2: A=5, B=4.5 -> B) and 0.4 (A=2.5, B=3.25 -> A): bound in [0.2, 0.4].
    assert 0.2 <= lo <= 0.4
    assert math.isinf(hi)


def test_validity_region_open_when_always_best():
    db = PerformanceDatabase("app", ["client.cpu"])
    for cpu in (0.2, 1.0):
        db.add(Record(cfg(c="only"), pt(cpu), {"t": 1.0 / cpu}))
    sched = ResourceScheduler(db, UserPreference.single(Objective("t")))
    decision = sched.select(pt(0.5))
    lo, hi = decision.conditions["client.cpu"]
    assert math.isinf(lo) and lo < 0
    assert math.isinf(hi) and hi > 0


def test_validity_region_constraint_bound():
    # Single config whose t = 1/cpu; constraint t <= 4 -> invalid below 0.25.
    db = PerformanceDatabase("app", ["client.cpu"])
    for cpu in (0.1, 0.2, 0.4, 0.8):
        db.add(Record(cfg(c="x"), pt(cpu), {"t": 1.0 / cpu}))
    pref = UserPreference.single(Objective("t"), [MetricRange("t", hi=4.0)])
    sched = ResourceScheduler(db, pref)
    decision = sched.select(pt(0.8))
    lo, hi = decision.conditions["client.cpu"]
    # 0.4 acceptable (t=2.5), 0.2 not (t=5) -> bound at midpoint 0.3.
    assert lo == pytest.approx(0.3)


def test_scheduler_validation():
    db = crossover_db()
    with pytest.raises(SchedulerError):
        ResourceScheduler(db, UserPreference.single(Objective("t")), mode="psychic")
    empty = PerformanceDatabase("app", ["client.cpu"])
    with pytest.raises(SchedulerError):
        ResourceScheduler(empty, UserPreference.single(Objective("t")))


def test_decision_log():
    db = crossover_db()
    sched = ResourceScheduler(db, UserPreference.single(Objective("t")))
    sched.select(pt(1.0))
    sched.select(pt(0.1))
    assert len(sched.decisions) == 2
    assert sched.decisions[0].config == cfg(c="A")
    assert sched.decisions[1].config == cfg(c="B")


def test_candidates_subset_restricts_choice():
    db = crossover_db()
    sched = ResourceScheduler(
        db,
        UserPreference.single(Objective("t")),
        candidates=[cfg(c="B")],
    )
    assert sched.select(pt(1.0)).config == cfg(c="B")
