"""Fault-tolerance tests for the adaptation runtime: steering ack
timeouts, exchange staleness under partitions, the peer-liveness
watchdog, violation merging, and the negotiation depth bound."""

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.profiling import PerformanceDatabase, Record, ResourcePoint
from repro.runtime import (
    AdaptationController,
    MonitorExchange,
    MonitoringAgent,
    Objective,
    ResourceScheduler,
    UserPreference,
)
from repro.sandbox import ResourceLimits, Testbed
from repro.tunable import (
    ConfigSpace,
    Configuration,
    ControlParameter,
    ExecutionEnv,
    HostComponent,
    LinkComponent,
    QoSMetric,
    TaskGraph,
    TaskSpec,
    TransitionSpec,
    TunableApp,
)

EXCHANGE_PORT = "monitor.exchange"


# ------------------------------------------------------------- app builders


def one_host_app(modes=("a", "b", "c"), forbidden=(), apply_changes=True,
                 rounds=4000):
    """Single-host spinner; guard refuses switches into ``forbidden``.

    With ``apply_changes=False`` the app never reaches a safe point — a
    stand-in for an application stalled behind a crashed dependency.
    """
    space = ConfigSpace([ControlParameter("mode", tuple(modes))])
    env = ExecutionEnv([HostComponent("node", cpu_speed=100.0)])
    transitions = (
        TransitionSpec(
            guard=lambda old, new: new["mode"] not in forbidden,
            name="refuse-forbidden",
        ),
    )

    def launcher(rt):
        def main():
            sb = rt.sandbox("node")
            for _ in range(rounds):
                if apply_changes:
                    yield from rt.controls.apply(rt, rt.sim.now)
                yield sb.compute(0.5)
            rt.qos.update("done", 1.0)

        return rt.sim.process(main())

    return TunableApp(
        "faulty", space, env,
        metrics=[QoSMetric("done")],
        tasks=TaskGraph([TaskSpec("spin", params=("mode",),
                                  resources=("node.cpu",))]),
        transitions=transitions,
        launcher=launcher,
    )


def mode_db(modes=("a", "b", "c")):
    """'a' best at high CPU, the rest progressively better at low CPU."""
    db = PerformanceDatabase("faulty", ["node.cpu"])
    for rank, mode in enumerate(modes):
        for s in (0.1, 0.3, 0.6, 1.0):
            t = 1.0 / s if rank == 0 else 3.0 + 0.1 * rank + 0.2 / s
            db.add(Record(Configuration({"mode": mode}),
                          ResourcePoint({"node.cpu": s}), {"t": t}))
    return db


def two_host_app(rounds=5000):
    space = ConfigSpace([ControlParameter("mode", ("x",))])
    env = ExecutionEnv(
        [HostComponent("client", cpu_speed=100.0),
         HostComponent("server", cpu_speed=100.0)],
        [LinkComponent("client", "server", bandwidth=1e6, latency=0.0005)],
    )

    def launcher(rt):
        def spin(host):
            sb = rt.sandbox(host)
            for _ in range(rounds):
                yield sb.compute(0.5)

        rt.sim.process(spin("server"))

        def client_main():
            yield from spin("client")
            rt.qos.update("done", 1.0)

        return rt.sim.process(client_main())

    return TunableApp(
        "twohost", space, env,
        metrics=[QoSMetric("done")],
        tasks=TaskGraph([TaskSpec("spin",
                                  resources=("client.cpu", "server.cpu"))]),
        launcher=launcher,
    )


def two_host_db():
    db = PerformanceDatabase("twohost", ["client.cpu", "server.cpu"])
    for c in (0.2, 0.6, 1.0):
        for s in (0.2, 0.6, 1.0):
            db.add(Record(Configuration({"mode": "x"}),
                          ResourcePoint({"client.cpu": c, "server.cpu": s}),
                          {"t": 1.0 / min(c, s)}))
    return db


# ------------------------------------------------- steering ack timeout


def run_stalled(ack_timeout=1.0, max_retries=2, until=30.0):
    """Violation fires, but the app never reaches a safe point."""
    app = one_host_app(apply_changes=False)
    controller = AdaptationController(
        ResourceScheduler(mode_db(), UserPreference.single(Objective("t"))),
        monitor_kwargs={"window": 0.5, "cooldown": 50.0},
        steering_kwargs={"ack_timeout": ack_timeout,
                         "max_retries": max_retries, "backoff": 2.0},
    )
    decision = controller.select_initial(ResourcePoint({"node.cpu": 1.0}))
    tb = Testbed(host_specs=app.env.host_specs())
    rt = app.instantiate(tb, decision.config,
                         limits={"node": ResourceLimits(cpu_share=1.0)})
    controller.attach(rt)

    def vary():
        yield tb.sim.timeout(5.0)
        rt.sandboxes["node"].set_limits(ResourceLimits(cpu_share=0.1))

    tb.sim.process(vary())
    tb.run(until=until)
    return controller, rt


def test_steering_timeout_abandons_stalled_handshake():
    controller, rt = run_stalled()
    kinds = [e.kind for e in controller.events]
    assert "steering-timeout" in kinds
    # The timeout is terminal, not a rejection: no negotiation happened.
    assert "rejected" not in kinds and "applied" not in kinds
    assert controller.steering.timeouts == 1
    assert controller.steering.retries == 2
    # The stale change was withdrawn: the app cannot apply it later.
    assert rt.controls.pending is None
    assert rt.controls.current == Configuration({"mode": "a"})


def test_timeout_event_names_the_abandoned_config():
    controller, _rt = run_stalled()
    timeouts = [e for e in controller.events if e.kind == "steering-timeout"]
    assert timeouts and timeouts[0].config == Configuration({"mode": "b"})


def test_rejection_negotiation_still_works_with_timeout_armed():
    """A guard rejection must negotiate immediately, not wait for the
    ack timeout: the two failure paths stay distinct."""
    app = one_host_app(forbidden={"b"})
    controller = AdaptationController(
        ResourceScheduler(mode_db(), UserPreference.single(Objective("t"))),
        monitor_kwargs={"window": 0.5, "cooldown": 50.0},
        steering_kwargs={"ack_timeout": 5.0, "max_retries": 2},
    )
    decision = controller.select_initial(ResourcePoint({"node.cpu": 1.0}))
    tb = Testbed(host_specs=app.env.host_specs())
    rt = app.instantiate(tb, decision.config,
                         limits={"node": ResourceLimits(cpu_share=1.0)})
    controller.attach(rt)

    def vary():
        yield tb.sim.timeout(5.0)
        rt.sandboxes["node"].set_limits(ResourceLimits(cpu_share=0.1))

    tb.sim.process(vary())
    tb.run(until=30.0)
    kinds = [e.kind for e in controller.events]
    assert "rejected" in kinds and "applied" in kinds
    assert "steering-timeout" not in kinds
    assert rt.controls.current == Configuration({"mode": "c"})
    assert controller.steering.timeouts == 0


# --------------------------------------------------- negotiation depth bound


def test_negotiation_depth_bound():
    """With every alternative refused, negotiation stops at the depth
    bound instead of walking the whole configuration space."""
    modes = ("a", "b", "c", "d", "e")
    app = one_host_app(modes=modes, forbidden={"b", "c", "d", "e"})
    controller = AdaptationController(
        ResourceScheduler(mode_db(modes), UserPreference.single(Objective("t"))),
        monitor_kwargs={"window": 0.5, "cooldown": 50.0},
        max_negotiation_depth=2,
    )
    decision = controller.select_initial(ResourcePoint({"node.cpu": 1.0}))
    tb = Testbed(host_specs=app.env.host_specs())
    rt = app.instantiate(tb, decision.config,
                         limits={"node": ResourceLimits(cpu_share=1.0)})
    controller.attach(rt)

    def vary():
        yield tb.sim.timeout(5.0)
        rt.sandboxes["node"].set_limits(ResourceLimits(cpu_share=0.1))

    tb.sim.process(vary())
    tb.run(until=30.0)
    kinds = [e.kind for e in controller.events]
    # Two rejections (depth 0 and 1), then the bound fires — with four
    # forbidden alternatives, an unbounded walk would reject four times.
    assert kinds.count("rejected") == 2
    assert "no-candidate" in kinds
    assert rt.controls.current == Configuration({"mode": "a"})


# -------------------------------------------------- violation merging


def test_second_violation_during_settling_is_merged():
    """A violation in a *different* resource dimension arriving inside the
    settling window folds into the pending decision instead of vanishing."""
    db = PerformanceDatabase("app", ["node.cpu", "node.net"])
    for s in (0.1, 0.5, 1.0):
        for n in (0.1, 0.5, 1.0):
            db.add(Record(Configuration({"mode": "x"}),
                          ResourcePoint({"node.cpu": s, "node.net": n}),
                          {"t": 1.0 / min(s, n)}))
    app = one_host_app(modes=("x",))
    controller = AdaptationController(
        ResourceScheduler(db, UserPreference.single(Objective("t"))),
        monitor_kwargs={"window": 0.5, "cooldown": 50.0},
        settle_delay=1.0,
    )
    decision = controller.select_initial(
        ResourcePoint({"node.cpu": 1.0, "node.net": 1.0})
    )
    tb = Testbed(host_specs=app.env.host_specs())
    rt = app.instantiate(tb, decision.config,
                         limits={"node": ResourceLimits(cpu_share=1.0)})
    controller.attach(rt)

    seen_points = []
    real_select = controller.scheduler.select

    def spy(point, exclude=frozenset()):
        seen_points.append(dict(point))
        return real_select(point, exclude=exclude)

    controller.scheduler.select = spy

    def drive():
        yield tb.sim.timeout(2.0)
        controller._on_violation({"node.cpu": 0.3})
        yield tb.sim.timeout(0.5)  # inside the settling window
        controller._on_violation({"node.net": 0.1})

    tb.sim.process(drive())
    tb.run(until=6.0)
    assert seen_points, "no decision was made"
    # node.net is not monitored, so only the merged violation estimates
    # can have carried it into the decision point.
    assert seen_points[0]["node.net"] == pytest.approx(0.1)


# ------------------------------------- exchange staleness and the watchdog


def partitioned_testbed(stale_after=0.5, heartbeat_every=0.25,
                        partition=(2.0, 4.0)):
    app = two_host_app()
    tb = Testbed(host_specs=app.env.host_specs(),
                 link_specs=app.env.link_specs())
    FaultInjector.attach(tb, FaultPlan.from_spec([
        {"kind": "partition", "groups": [["client"], ["server"]],
         "at": partition[0], "until": partition[1]},
    ]))
    rt = app.instantiate(
        tb, Configuration({"mode": "x"}),
        limits={"client": ResourceLimits(cpu_share=0.8),
                "server": ResourceLimits(cpu_share=0.3)},
    )
    client_agent = MonitoringAgent(rt, watch=["client.cpu"]).start()
    server_agent = MonitoringAgent(rt, watch=["server.cpu"]).start()
    client_ex = MonitorExchange(
        rt, client_agent, "client", ["server"],
        period=0.1, stale_after=stale_after, heartbeat_every=heartbeat_every,
    ).start()
    server_ex = MonitorExchange(
        rt, server_agent, "server", ["client"],
        period=0.1, stale_after=stale_after, heartbeat_every=heartbeat_every,
    ).start()
    return tb, rt, client_ex, server_ex


def test_stale_estimates_excluded_during_partition():
    tb, rt, client_ex, _server_ex = partitioned_testbed()
    probes = {}

    def probe():
        yield tb.sim.timeout(1.9)
        probes["before"] = dict(client_ex.global_estimates())
        yield tb.sim.timeout(2.0)  # t=3.9, deep in the partition
        probes["during"] = dict(client_ex.global_estimates())
        client_ex.expire_stale()
        yield tb.sim.timeout(1.6)  # t=5.5, after the heal
        probes["after"] = dict(client_ex.global_estimates())

    tb.sim.process(probe())
    tb.run(until=6.0)
    # Connected: the server's estimate is part of the global view.
    assert probes["before"]["server.cpu"] == pytest.approx(0.3, abs=0.05)
    # Partitioned: the frozen remote estimate aged out — local-only view.
    assert "server.cpu" not in probes["during"]
    assert "client.cpu" in probes["during"]
    assert client_ex.expired >= 1
    # Healed: heartbeats resume and the global view recovers.
    assert probes["after"]["server.cpu"] == pytest.approx(0.3, abs=0.05)


def test_heartbeats_advance_peer_last_seen_when_steady():
    """Without heartbeats a steady estimate goes silent (the significance
    filter suppresses it); the keepalive must still advance liveness."""
    tb, rt, client_ex, _server_ex = partitioned_testbed(partition=(50.0, 51.0))
    stamps = []

    def probe():
        for _ in range(4):
            yield tb.sim.timeout(1.0)
            stamps.append(client_ex.peer_last_seen.get("server"))

    tb.sim.process(probe())
    tb.run(until=5.0)
    assert all(s is not None for s in stamps)
    assert stamps == sorted(stamps) and stamps[0] < stamps[-1]


def test_watchdog_declares_lost_and_recovered_peer():
    app = two_host_app()
    controller = AdaptationController(
        ResourceScheduler(two_host_db(), UserPreference.single(Objective("t"))),
        monitor_kwargs={"window": 0.5, "cooldown": 50.0},
        watchdog_period=0.25,
    )
    decision = controller.select_initial(
        ResourcePoint({"client.cpu": 1.0, "server.cpu": 1.0})
    )
    tb = Testbed(host_specs=app.env.host_specs(),
                 link_specs=app.env.link_specs())
    FaultInjector.attach(tb, FaultPlan.from_spec([
        {"kind": "partition", "groups": [["client"], ["server"]],
         "at": 2.0, "until": 4.0},
    ]))
    rt = app.instantiate(tb, decision.config)
    controller.attach(rt)
    server_agent = MonitoringAgent(rt, watch=["server.cpu"],
                                   period=0.05).start()
    client_ex = MonitorExchange(
        rt, controller.monitor, "client", ["server"],
        period=0.1, stale_after=0.5, heartbeat_every=0.25,
    ).start()
    MonitorExchange(
        rt, server_agent, "server", ["client"],
        period=0.1, stale_after=0.5, heartbeat_every=0.25,
    ).start()
    controller.start_watchdog(client_ex)
    tb.run(until=8.0)

    kinds = [e.kind for e in controller.events]
    assert "peer-lost" in kinds and "peer-recovered" in kinds
    lost = next(e for e in controller.events if e.kind == "peer-lost")
    recovered = next(e for e in controller.events if e.kind == "peer-recovered")
    assert lost.estimates == {"peer": "server"}
    assert 2.0 < lost.time < 4.0
    assert recovered.time > 4.0
    assert controller.lost_peers == set()
    # The degraded re-selection saw the crashed host as zero availability.
    degraded = next(e for e in controller.events if e.kind == "degraded")
    assert degraded.estimates["server.cpu"] == 0.0


# ------------------------------------------------------- exchange stop()


def test_stop_terminates_receiver_and_frees_mailbox():
    """stop() must kill the parked receiver *and* withdraw its mailbox
    waiter — otherwise the dead process swallows the next message."""
    tb, rt, client_ex, server_ex = partitioned_testbed(partition=(50.0, 51.0))

    def halt():
        yield tb.sim.timeout(1.0)
        client_ex.stop()

    tb.sim.process(halt())
    tb.run(until=3.0)
    mailbox = rt.sandboxes["client"].host.mailbox(EXCHANGE_PORT)
    assert not client_ex._recv_proc.is_alive
    assert not client_ex._pub_proc.is_alive
    assert not mailbox._get_waiters
    # The server kept publishing after the stop; with no zombie waiter the
    # messages queue up in the store instead of vanishing.
    assert len(mailbox.items) > 0


def test_stop_is_idempotent():
    tb, rt, client_ex, _server_ex = partitioned_testbed(partition=(50.0, 51.0))
    tb.run(until=1.0)
    client_ex.stop()
    client_ex.stop()
    assert client_ex._stopped
