"""MonitoringAgent estimates sourced from a CrowdSource's columnar tallies."""

from types import SimpleNamespace

import pytest

from repro.runtime.monitor import MonitoringAgent
from repro.sim import Simulator


class FakeCrowd:
    """Stands in for a CrowdSource: stats() over mutable tallies."""

    def __init__(self):
        self.rows = {
            "free": {"satisfied": 0, "violated": 0, "issued": 0, "inflight": 0},
        }

    def stats(self):
        return {name: dict(row) for name, row in self.rows.items()}


def make_agent(crowd, watch, period=0.5):
    sim = Simulator()
    rt = SimpleNamespace(sim=sim, sandboxes={}, finished=None)
    return MonitoringAgent(rt, watch=watch, period=period, window=10.0,
                           crowd=crowd)


def test_crowd_qos_and_rate_are_delta_anchored():
    crowd = FakeCrowd()
    agent = make_agent(
        crowd,
        ["crowd.free.qos", "crowd.free.rate", "crowd.free.inflight"],
    )
    crowd.rows["free"].update(satisfied=10, violated=0, issued=100, inflight=7)
    agent._sample()
    # First sample anchors the cumulative counters: no qos/rate estimate
    # yet, but inflight is instantaneous and reports immediately.
    est = agent.estimates()
    assert "crowd.free.qos" not in est
    assert "crowd.free.rate" not in est
    assert est["crowd.free.inflight"] == pytest.approx(7.0)

    crowd.rows["free"].update(satisfied=90, violated=20, issued=600, inflight=3)
    agent._sample()
    est = agent.estimates()
    # 80 satisfied + 20 violated resolved since the anchor -> 0.8.
    assert est["crowd.free.qos"] == pytest.approx(0.8)
    # 500 issued over one 0.5 s period -> 1000 req/s.
    assert est["crowd.free.rate"] == pytest.approx(1000.0)
    assert est["crowd.free.inflight"] == pytest.approx(5.0)  # mean of 7, 3


def test_quiet_period_produces_no_qos_signal():
    crowd = FakeCrowd()
    agent = make_agent(crowd, ["crowd.free.qos"])
    crowd.rows["free"].update(satisfied=50, violated=50, issued=100)
    agent._sample()
    agent._sample()  # nothing resolved since the anchor
    assert "crowd.free.qos" not in agent.estimates()


def test_unknown_class_and_missing_crowd_are_ignored():
    crowd = FakeCrowd()
    agent = make_agent(crowd, ["crowd.ghost.qos"])
    agent._sample()
    assert agent.estimates() == {}

    agent_none = make_agent(None, ["crowd.free.qos"])
    agent_none._sample()  # no crowd attached: the entry is skipped
    assert agent_none.estimates() == {}


def test_sampling_is_passive_on_real_source():
    """A live MonitoringAgent sampling a real CrowdSource run changes
    nothing about the run's outcome."""
    from repro.crowd import ConstantRate, CrowdAgent, CrowdClass, CrowdSource, ServiceClass
    from repro.sandbox import HostSpec, LinkSpec, Testbed

    def run(monitored: bool):
        tb = Testbed(
            host_specs=[HostSpec("client", 450.0), HostSpec("server", 450.0)],
            link_specs=[LinkSpec("client", "server", 12.5e6, 0.002)],
            seed=0,
        )
        classes = [CrowdClass("open", users=400,
                              arrivals=ConstantRate(per_user=0.05))]
        source = CrowdSource(tb.sim, tb.hosts["client"], "server", "crowd.req",
                             classes, seed=0, horizon=10.0, drain=5.0)
        CrowdAgent(
            tb.sim, tb.hosts["server"], "crowd.req",
            [ServiceClass("open", price=lambda _c: (1e-4, 200.0),
                          link_weight=8.0)],
            config_fn=lambda: {}, source=source,
        )
        agent = None
        if monitored:
            rt = SimpleNamespace(sim=tb.sim, sandboxes={}, finished=None)
            agent = MonitoringAgent(
                rt, watch=["crowd.open.qos", "crowd.open.rate"],
                period=0.5, window=60.0, crowd=source,
            ).start()
        tb.run(until=30.0)
        if agent is not None:
            agent.stop()
        return source.stats(), agent

    plain, _ = run(monitored=False)
    monitored, agent = run(monitored=True)
    assert plain == monitored
    est = agent.estimates()
    assert est["crowd.open.rate"] > 0.0
    assert 0.0 < est["crowd.open.qos"] <= 1.0
