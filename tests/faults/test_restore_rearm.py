"""Regression: crash-healed hosts re-announce themselves deterministically.

A host coming back from a windowed crash must re-arm its monitor
exchange: the next publisher tick after the restore re-announces the
full estimate vector, so peers learn of the recovery exactly one
exchange period after the crash's ``until`` fires — not whenever the
next significant change or keepalive happens to land (which used to
depend on process creation order).
"""

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.runtime import MonitorExchange, MonitoringAgent
from repro.sandbox import ResourceLimits, Testbed
from repro.tunable import (
    ConfigSpace,
    Configuration,
    ControlParameter,
    ExecutionEnv,
    HostComponent,
    LinkComponent,
    QoSMetric,
    TaskGraph,
    TaskSpec,
    TunableApp,
)

PERIOD = 0.25
CRASH_AT, RESTORE_AT = 3.0, 6.0


def spinner_app(rounds=5000):
    space = ConfigSpace([ControlParameter("mode", ("x",))])
    env = ExecutionEnv(
        [HostComponent("client", cpu_speed=100.0),
         HostComponent("server", cpu_speed=100.0)],
        [LinkComponent("client", "server", bandwidth=1e6, latency=0.0005)],
    )

    def launcher(rt):
        def spin(host):
            sb = rt.sandbox(host)
            for _ in range(rounds):
                yield sb.compute(0.5)

        rt.sim.process(spin("server"))
        return rt.sim.process(spin("client"))

    return TunableApp(
        "rearm", space, env,
        metrics=[QoSMetric("done")],
        tasks=TaskGraph([TaskSpec("spin",
                                  resources=("client.cpu", "server.cpu"))]),
        launcher=launcher,
    )


def run_crash_heal(server_exchange_first):
    """Crash the server host mid-run; return the client's view of it.

    ``server_exchange_first`` flips the creation order of the two
    exchanges — the re-announcement instant must not care.
    """
    app = spinner_app()
    tb = Testbed(host_specs=app.env.host_specs(), link_specs=app.env.link_specs())
    FaultInjector.attach(
        tb,
        FaultPlan.from_spec([
            {"kind": "crash", "host": "server", "at": CRASH_AT,
             "until": RESTORE_AT, "mode": "drop"},
        ]),
        seed=0,
    )
    rt = app.instantiate(
        tb, Configuration({"mode": "x"}),
        limits={"client": ResourceLimits(cpu_share=0.8),
                "server": ResourceLimits(cpu_share=0.3)},
    )
    client_agent = MonitoringAgent(rt, watch=["client.cpu"], period=0.05).start()
    server_agent = MonitoringAgent(rt, watch=["server.cpu"], period=0.05).start()

    def make(host, agent, peer):
        # A huge significance plus no keepalive means that after the
        # initial announcement, *only* the post-restore re-arm can make
        # this exchange publish again.
        return MonitorExchange(
            rt, agent, host, [peer], period=PERIOD, significance=10.0,
        ).start()

    if server_exchange_first:
        make("server", server_agent, "client")
        client_ex = make("client", client_agent, "server")
    else:
        client_ex = make("client", client_agent, "server")
        make("server", server_agent, "client")
    tb.run(until=9.0)
    return client_ex


@pytest.mark.parametrize("server_exchange_first", [False, True])
def test_peer_learns_of_recovery_one_period_after_restore(server_exchange_first):
    client_ex = run_crash_heal(server_exchange_first)
    last_seen = client_ex.peer_last_seen["server"]
    # Heard again strictly after the restore...
    assert last_seen > RESTORE_AT
    # ...and within one publisher period (+ delivery), not at some later
    # significant change or keepalive.
    assert last_seen <= RESTORE_AT + PERIOD + 0.05
    # The re-announced estimates actually landed.
    assert "server.cpu" in client_ex.remote_estimates


def test_rearm_instant_is_independent_of_creation_order():
    a = run_crash_heal(server_exchange_first=False)
    b = run_crash_heal(server_exchange_first=True)
    assert a.peer_last_seen["server"] == b.peer_last_seen["server"]
