"""Tests for fault-plan parsing, validation, and spec round-tripping."""

import math

import pytest

from repro.faults import FaultPlan, FaultPlanError, MessageFaultRule


FULL_SPEC = {
    "events": [
        {"kind": "crash", "host": "server", "at": 10.0, "until": 20.0,
         "mode": "queue", "clear": True},
        {"kind": "link-down", "between": ["client", "server"],
         "at": 30.0, "until": 40.0, "mode": "drop"},
        {"kind": "partition", "groups": [["client"], ["server", "cache"]],
         "at": 50.0, "until": 60.0},
        {"kind": "loss", "rate": 0.2, "port": "monitor.exchange",
         "at": 0.0, "until": 100.0},
        {"kind": "delay", "extra": 0.05, "jitter": 0.02, "src": "server"},
        {"kind": "duplicate", "rate": 0.1, "copies": 2, "dst": "client"},
    ]
}


def test_parse_full_spec():
    plan = FaultPlan.from_spec(FULL_SPEC)
    assert [f.kind for f in plan.schedule] == ["crash", "link-down", "partition"]
    assert [r.kind for r in plan.rules] == ["loss", "delay", "duplicate"]
    crash = plan.schedule[0]
    assert (crash.host, crash.at, crash.until) == ("server", 10.0, 20.0)
    assert crash.clear_mailboxes is True
    link = plan.schedule[1]
    assert link.between == ("client", "server") and link.mode == "drop"
    part = plan.schedule[2]
    assert part.groups == (("client",), ("server", "cache"))
    assert part.mode == "queue"  # default
    loss = plan.rules[0]
    assert (loss.rate, loss.port, loss.until) == (0.2, "monitor.exchange", 100.0)
    delay = plan.rules[1]
    assert (delay.extra, delay.jitter, delay.src) == (0.05, 0.02, "server")
    assert delay.until == math.inf  # "forever" default
    dup = plan.rules[2]
    assert (dup.rate, dup.copies, dup.dst) == (0.1, 2, "client")


def test_bare_list_spec_and_sorting():
    plan = FaultPlan.from_spec([
        {"kind": "crash", "host": "b", "at": 20.0},
        {"kind": "crash", "host": "a", "at": 5.0},
    ])
    assert [f.host for f in plan.schedule] == ["a", "b"]
    assert plan.schedule[0].until is None  # crash with no recovery


def test_spec_round_trip():
    plan = FaultPlan.from_spec(FULL_SPEC)
    replayed = FaultPlan.from_spec(plan.to_spec())
    assert replayed.to_spec() == plan.to_spec()
    assert replayed.schedule == plan.schedule
    assert replayed.rules == plan.rules


def test_empty_and_horizon():
    assert FaultPlan.from_spec({}).empty
    assert FaultPlan.from_spec({}).horizon() == 0.0
    plan = FaultPlan.from_spec(FULL_SPEC)
    assert not plan.empty
    assert plan.horizon() == math.inf  # the delay rule never ends
    bounded = FaultPlan.from_spec(
        [{"kind": "crash", "host": "x", "at": 1.0, "until": 7.5}]
    )
    assert bounded.horizon() == 7.5


def test_rule_window_and_matching():
    rule = MessageFaultRule("loss", at=10.0, until=20.0, port="data")
    assert not rule.active(9.99)
    assert rule.active(10.0) and rule.active(19.99)
    assert not rule.active(20.0)  # half-open window

    class Msg:
        src, dst, port = "a", "b", "data"

    assert rule.matches(Msg)
    Msg.port = "other"
    assert not rule.matches(Msg)


@pytest.mark.parametrize(
    "entry",
    [
        {"kind": "meteor-strike"},
        {"no-kind": True},
        {"kind": "crash"},  # missing host
        {"kind": "crash", "host": "x", "at": -1.0},
        {"kind": "crash", "host": "x", "at": 5.0, "until": 5.0},
        {"kind": "crash", "host": "x", "mode": "explode"},
        {"kind": "link-down", "between": ["only-one"]},
        {"kind": "partition", "groups": [["a"], []]},
        {"kind": "partition", "groups": [["a"]]},
        {"kind": "loss", "rate": 1.5},
        {"kind": "loss", "rate": -0.1},
        {"kind": "delay"},  # no extra, no jitter
        {"kind": "delay", "extra": -0.1},
        {"kind": "duplicate", "copies": 0},
    ],
)
def test_invalid_specs_rejected(entry):
    with pytest.raises(FaultPlanError):
        FaultPlan.from_spec([entry])


# ----------------------------------------------------------- kill events


def test_kill_kind_parse_and_round_trip():
    plan = FaultPlan.from_spec([{"kind": "kill", "service": "viz-server",
                                 "at": 12.0}])
    (kill,) = plan.schedule
    assert (kill.kind, kill.service, kill.at, kill.until) == (
        "kill", "viz-server", 12.0, None
    )
    assert kill.to_spec() == {"kind": "kill", "at": 12.0,
                              "service": "viz-server"}
    replayed = FaultPlan.from_spec(plan.to_spec())
    assert replayed.schedule == plan.schedule


@pytest.mark.parametrize(
    "entry",
    [
        {"kind": "kill"},  # missing service
        {"kind": "kill", "service": ""},
        {"kind": "kill", "service": "svc", "at": 5.0, "until": 9.0},
        {"kind": "kill", "service": "svc", "at": -2.0},
    ],
)
def test_invalid_kill_specs_rejected(entry):
    with pytest.raises(FaultPlanError):
        FaultPlan.from_spec([entry])


# ------------------------------------------------------ crash overlap checks


def test_overlapping_crash_windows_on_same_host_rejected():
    with pytest.raises(FaultPlanError, match="overlapping windows"):
        FaultPlan.from_spec([
            {"kind": "crash", "host": "x", "at": 1.0, "until": 5.0},
            {"kind": "crash", "host": "x", "at": 4.0, "until": 8.0},
        ])


def test_open_ended_crash_overlaps_everything_later():
    with pytest.raises(FaultPlanError, match="overlapping windows"):
        FaultPlan.from_spec([
            {"kind": "crash", "host": "x", "at": 1.0},  # never recovers
            {"kind": "crash", "host": "x", "at": 100.0, "until": 101.0},
        ])


def test_touching_crash_windows_allowed():
    plan = FaultPlan.from_spec([
        {"kind": "crash", "host": "x", "at": 1.0, "until": 5.0},
        {"kind": "crash", "host": "x", "at": 5.0, "until": 8.0},
    ])
    assert [f.at for f in plan.schedule] == [1.0, 5.0]


def test_crash_windows_on_different_hosts_may_overlap():
    plan = FaultPlan.from_spec([
        {"kind": "crash", "host": "x", "at": 1.0, "until": 5.0},
        {"kind": "crash", "host": "y", "at": 2.0, "until": 6.0},
    ])
    assert len(plan.schedule) == 2


def test_every_kind_round_trips_through_to_spec():
    spec = {
        "events": FULL_SPEC["events"] + [
            {"kind": "kill", "service": "svc", "at": 70.0},
        ]
    }
    plan = FaultPlan.from_spec(spec)
    replayed = FaultPlan.from_spec(plan.to_spec())
    assert replayed.to_spec() == plan.to_spec()
    assert replayed.schedule == plan.schedule
    assert replayed.rules == plan.rules
    assert {f.kind for f in plan.schedule} == {
        "crash", "link-down", "partition", "kill"
    }
