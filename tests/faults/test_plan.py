"""Tests for fault-plan parsing, validation, and spec round-tripping."""

import math

import pytest

from repro.faults import FaultPlan, FaultPlanError, MessageFaultRule


FULL_SPEC = {
    "events": [
        {"kind": "crash", "host": "server", "at": 10.0, "until": 20.0,
         "mode": "queue", "clear": True},
        {"kind": "link-down", "between": ["client", "server"],
         "at": 30.0, "until": 40.0, "mode": "drop"},
        {"kind": "partition", "groups": [["client"], ["server", "cache"]],
         "at": 50.0, "until": 60.0},
        {"kind": "loss", "rate": 0.2, "port": "monitor.exchange",
         "at": 0.0, "until": 100.0},
        {"kind": "delay", "extra": 0.05, "jitter": 0.02, "src": "server"},
        {"kind": "duplicate", "rate": 0.1, "copies": 2, "dst": "client"},
    ]
}


def test_parse_full_spec():
    plan = FaultPlan.from_spec(FULL_SPEC)
    assert [f.kind for f in plan.schedule] == ["crash", "link-down", "partition"]
    assert [r.kind for r in plan.rules] == ["loss", "delay", "duplicate"]
    crash = plan.schedule[0]
    assert (crash.host, crash.at, crash.until) == ("server", 10.0, 20.0)
    assert crash.clear_mailboxes is True
    link = plan.schedule[1]
    assert link.between == ("client", "server") and link.mode == "drop"
    part = plan.schedule[2]
    assert part.groups == (("client",), ("server", "cache"))
    assert part.mode == "queue"  # default
    loss = plan.rules[0]
    assert (loss.rate, loss.port, loss.until) == (0.2, "monitor.exchange", 100.0)
    delay = plan.rules[1]
    assert (delay.extra, delay.jitter, delay.src) == (0.05, 0.02, "server")
    assert delay.until == math.inf  # "forever" default
    dup = plan.rules[2]
    assert (dup.rate, dup.copies, dup.dst) == (0.1, 2, "client")


def test_bare_list_spec_and_sorting():
    plan = FaultPlan.from_spec([
        {"kind": "crash", "host": "b", "at": 20.0},
        {"kind": "crash", "host": "a", "at": 5.0},
    ])
    assert [f.host for f in plan.schedule] == ["a", "b"]
    assert plan.schedule[0].until is None  # crash with no recovery


def test_spec_round_trip():
    plan = FaultPlan.from_spec(FULL_SPEC)
    replayed = FaultPlan.from_spec(plan.to_spec())
    assert replayed.to_spec() == plan.to_spec()
    assert replayed.schedule == plan.schedule
    assert replayed.rules == plan.rules


def test_empty_and_horizon():
    assert FaultPlan.from_spec({}).empty
    assert FaultPlan.from_spec({}).horizon() == 0.0
    plan = FaultPlan.from_spec(FULL_SPEC)
    assert not plan.empty
    assert plan.horizon() == math.inf  # the delay rule never ends
    bounded = FaultPlan.from_spec(
        [{"kind": "crash", "host": "x", "at": 1.0, "until": 7.5}]
    )
    assert bounded.horizon() == 7.5


def test_rule_window_and_matching():
    rule = MessageFaultRule("loss", at=10.0, until=20.0, port="data")
    assert not rule.active(9.99)
    assert rule.active(10.0) and rule.active(19.99)
    assert not rule.active(20.0)  # half-open window

    class Msg:
        src, dst, port = "a", "b", "data"

    assert rule.matches(Msg)
    Msg.port = "other"
    assert not rule.matches(Msg)


@pytest.mark.parametrize(
    "entry",
    [
        {"kind": "meteor-strike"},
        {"no-kind": True},
        {"kind": "crash"},  # missing host
        {"kind": "crash", "host": "x", "at": -1.0},
        {"kind": "crash", "host": "x", "at": 5.0, "until": 5.0},
        {"kind": "crash", "host": "x", "mode": "explode"},
        {"kind": "link-down", "between": ["only-one"]},
        {"kind": "partition", "groups": [["a"], []]},
        {"kind": "partition", "groups": [["a"]]},
        {"kind": "loss", "rate": 1.5},
        {"kind": "loss", "rate": -0.1},
        {"kind": "delay"},  # no extra, no jitter
        {"kind": "delay", "extra": -0.1},
        {"kind": "duplicate", "copies": 0},
    ],
)
def test_invalid_specs_rejected(entry):
    with pytest.raises(FaultPlanError):
        FaultPlan.from_spec([entry])
