"""Tests for the fault injector against a live simulated network."""

import pytest

from repro.cluster import Host, Network
from repro.faults import FaultInjector, FaultPlan
from repro.sim import Simulator


def make_pair(bandwidth=1000.0, latency=0.0):
    sim = Simulator()
    net = Network(sim)
    for name in ("a", "b"):
        net.register(Host(sim, name, cpu_speed=100.0))
    net.connect("a", "b", bandwidth=bandwidth, latency=latency)
    return sim, net


def deliveries(sim, net, times, port="data", size=100.0):
    """Send one message per entry of ``times``; record delivery times."""
    arrived = []

    def recv():
        while True:
            msg = yield net.hosts["b"].mailbox(port).get()
            arrived.append((sim.now, msg.payload))

    def send():
        for t, tag in times:
            yield sim.timeout(t - sim.now)
            yield net.send("a", "b", port, tag, size=size)

    sim.process(recv())
    sim.process(send())
    return arrived


def install(net, events, seed=0):
    return FaultInjector(net, seed=seed).install(FaultPlan.from_spec(events))


# ---------------------------------------------------------- infrastructure


def test_crash_queue_mode_parks_until_restore():
    sim, net = make_pair()
    install(net, [{"kind": "crash", "host": "b", "at": 1.0, "until": 5.0}])
    arrived = deliveries(sim, net, [(0.0, "before"), (2.0, "during")])
    sim.run(until=10.0)
    tags = dict((tag, t) for t, tag in arrived)
    assert tags["before"] == pytest.approx(0.1)
    # Parked at arrival (~2.1), delivered at the restore time.
    assert tags["during"] == pytest.approx(5.0)
    assert net.messages_parked_total == 1
    assert net.messages_lost == 0


def test_crash_drop_mode_loses_messages_but_unblocks_sender():
    sim, net = make_pair()
    install(net, [{"kind": "crash", "host": "b", "at": 1.0, "until": 5.0,
                   "mode": "drop"}])
    arrived = deliveries(sim, net, [(2.0, "during"), (6.0, "after")])
    sim.run(until=10.0)
    # "during" is silently lost; the sender still progressed to "after".
    assert [tag for _t, tag in arrived] == ["after"]
    assert net.messages_lost == 1


def test_sender_on_crashed_host_is_unblocked():
    sim, net = make_pair()
    install(net, [{"kind": "crash", "host": "a", "at": 1.0, "until": 5.0}])
    sent_at = []

    def send():
        yield sim.timeout(2.0)
        yield net.send("a", "b", "data", "zombie", size=100.0)
        sent_at.append(sim.now)

    sim.process(send())
    sim.run(until=10.0)
    # The zombie sender's message vanished but the send completed at once.
    assert sent_at == [pytest.approx(2.0)]
    assert net.messages_lost == 1


def test_injector_log_records_apply_and_recover():
    sim, net = make_pair()
    injector = install(net, [
        {"kind": "crash", "host": "b", "at": 1.0, "until": 2.0},
        {"kind": "partition", "groups": [["a"], ["b"]], "at": 3.0, "until": 4.0},
    ])
    sim.run(until=10.0)
    assert [(e["t"], e["action"]) for e in injector.log] == [
        (1.0, "crash"), (2.0, "crash-recovered"),
        (3.0, "partition"), (4.0, "partition-recovered"),
    ]
    assert injector.log[2]["groups"] == [["a"], ["b"]]


def test_partition_blocks_both_directions():
    sim, net = make_pair()
    install(net, [{"kind": "partition", "groups": [["a"], ["b"]],
                   "at": 0.5, "until": 3.0}])
    a_to_b = deliveries(sim, net, [(1.0, "a2b")])
    b_arrived = []

    def recv_a():
        msg = yield net.hosts["a"].mailbox("data").get()
        b_arrived.append(sim.now)

    def send_b():
        yield sim.timeout(1.0)
        yield net.send("b", "a", "data", "b2a", size=100.0)

    sim.process(recv_a())
    sim.process(send_b())
    sim.run(until=10.0)
    assert a_to_b[0][0] == pytest.approx(3.0)
    assert b_arrived == [pytest.approx(3.0)]


def test_link_down_parks_then_flushes():
    sim, net = make_pair()
    install(net, [{"kind": "link-down", "between": ["a", "b"],
                   "at": 0.5, "until": 2.0}])
    arrived = deliveries(sim, net, [(1.0, "x")])
    sim.run(until=5.0)
    assert arrived[0][0] == pytest.approx(2.0)


# ------------------------------------------------------------ message rules


def test_loss_rule_certain_rate_drops_everything():
    sim, net = make_pair()
    injector = install(net, [{"kind": "loss", "rate": 1.0, "port": "data"}])
    arrived = deliveries(sim, net, [(0.0, "x"), (1.0, "y")])
    sim.run(until=5.0)
    assert arrived == []
    assert injector.dropped == 2
    assert net.messages_lost == 2


def test_loss_rule_filters_by_port():
    sim, net = make_pair()
    install(net, [{"kind": "loss", "rate": 1.0, "port": "data"}])
    arrived = deliveries(sim, net, [(0.0, "dropped")], port="data")
    safe = deliveries(sim, net, [(0.0, "kept")], port="ctrl")
    sim.run(until=5.0)
    assert arrived == []
    assert [tag for _t, tag in safe] == ["kept"]


def test_delay_rule_adds_latency():
    sim, net = make_pair()
    injector = install(net, [{"kind": "delay", "extra": 0.5, "port": "data"}])
    arrived = deliveries(sim, net, [(0.0, "x")])
    sim.run(until=5.0)
    assert arrived[0][0] == pytest.approx(0.6)  # 0.1 transfer + 0.5 extra
    assert injector.delayed == 1
    assert net.messages_delayed == 1


def test_duplicate_rule_delivers_extra_copies():
    sim, net = make_pair()
    injector = install(net, [{"kind": "duplicate", "rate": 1.0, "copies": 2,
                              "port": "data"}])
    arrived = deliveries(sim, net, [(0.0, "x")])
    sim.run(until=5.0)
    assert [tag for _t, tag in arrived] == ["x", "x", "x"]
    assert injector.duplicated == 2


def test_flush_after_outage_does_not_reroll_message_faults():
    """A parked message already passed the gate once; redelivery at restore
    must not give the loss rule a second roll of the dice."""
    sim, net = make_pair()
    install(net, [
        {"kind": "crash", "host": "b", "at": 0.05, "until": 2.0},
        {"kind": "loss", "rate": 1.0, "port": "data", "at": 1.0},
    ])
    arrived = deliveries(sim, net, [(0.0, "parked")])
    sim.run(until=5.0)
    # Parked before the loss window opened; flushed through it untouched.
    assert [tag for _t, tag in arrived] == ["parked"]


# ------------------------------------------------------------- determinism


def run_lossy(seed):
    sim, net = make_pair()
    injector = install(
        net,
        [{"kind": "loss", "rate": 0.5, "port": "data"},
         {"kind": "delay", "extra": 0.01, "jitter": 0.05, "port": "data"}],
        seed=seed,
    )
    arrived = deliveries(sim, net, [(float(i), f"m{i}") for i in range(20)])
    sim.run(until=50.0)
    return arrived, injector.dropped


def test_same_seed_replays_identically():
    first, dropped1 = run_lossy(seed=42)
    second, dropped2 = run_lossy(seed=42)
    assert first == second
    assert dropped1 == dropped2
    assert 0 < dropped1 < 20  # the rate actually randomized


def test_different_seed_diverges():
    first, _ = run_lossy(seed=42)
    second, _ = run_lossy(seed=43)
    assert first != second


def test_install_twice_rejected():
    sim, net = make_pair()
    injector = install(net, [])
    with pytest.raises(RuntimeError):
        injector.install(FaultPlan.from_spec({}))
