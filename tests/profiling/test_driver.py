"""Tests for the profiling driver (controlled executions -> database)."""

import pytest

from repro.profiling import ProfilingDriver, ResourceDimension, ResourcePoint
from repro.tunable import (
    ConfigSpace,
    Configuration,
    ControlParameter,
    ExecutionEnv,
    HostComponent,
    QoSMetric,
    TaskGraph,
    TaskSpec,
    TunableApp,
)


def make_app():
    """App whose elapsed time is work/(speed*share) — analytically known."""
    space = ConfigSpace([ControlParameter("work", (50, 100))])
    env = ExecutionEnv([HostComponent("node", cpu_speed=100.0)])

    def launcher(rt):
        def main():
            sb = rt.sandbox("node")
            t0 = rt.sim.now
            yield sb.compute(float(rt.config.work))
            rt.qos.update("elapsed", rt.sim.now - t0, time=rt.sim.now)

        return rt.sim.process(main())

    return TunableApp(
        name="measured",
        space=space,
        env=env,
        metrics=[QoSMetric("elapsed")],
        tasks=TaskGraph([TaskSpec("main", params=("work",), resources=("node.cpu",))]),
        launcher=launcher,
    )


def cpu_dim(*levels):
    return ResourceDimension("node.cpu", levels, lo=0.01, hi=1.0)


def test_measure_single_point():
    driver = ProfilingDriver(make_app(), [cpu_dim(0.5)])
    rec = driver.measure(
        Configuration({"work": 100}), ResourcePoint({"node.cpu": 0.5})
    )
    assert rec.metrics["elapsed"] == pytest.approx(2.0)
    assert rec.meta["virtual_duration"] >= 2.0


def test_profile_full_grid():
    driver = ProfilingDriver(make_app(), [cpu_dim(0.25, 0.5, 1.0)])
    db = driver.profile()
    assert len(db) == 6  # 2 configs x 3 points
    assert driver.runs == 6
    # Check the analytically expected values.
    assert db.predict(
        Configuration({"work": 50}), ResourcePoint({"node.cpu": 0.25}), "elapsed"
    ) == pytest.approx(2.0)
    assert db.predict(
        Configuration({"work": 100}), ResourcePoint({"node.cpu": 1.0}), "elapsed"
    ) == pytest.approx(1.0)


def test_profile_interpolation_between_grid_points():
    driver = ProfilingDriver(make_app(), [cpu_dim(0.25, 0.5, 1.0)])
    db = driver.profile(configs=[Configuration({"work": 100})])
    predicted = db.predict(
        Configuration({"work": 100}), ResourcePoint({"node.cpu": 0.75}), "elapsed"
    )
    # True value 100/75 = 1.333; linear interp of (0.5 -> 2.0, 1.0 -> 1.0)
    # gives 1.5 — close but not exact (convexity).
    assert predicted == pytest.approx(1.5)


def test_profile_adaptive_reduces_interpolation_error():
    true = lambda cpu: 100.0 / (100.0 * cpu)
    config = Configuration({"work": 100})
    query = ResourcePoint({"node.cpu": 0.3})

    coarse_driver = ProfilingDriver(make_app(), [cpu_dim(0.2, 0.6, 1.0)])
    coarse = coarse_driver.profile(configs=[config])
    coarse_err = abs(coarse.predict(config, query, "elapsed") - true(0.3))

    adaptive_driver = ProfilingDriver(make_app(), [cpu_dim(0.2, 0.6, 1.0)])
    refined = adaptive_driver.profile_adaptive(
        configs=[config], rounds=2, per_round=4
    )
    refined_err = abs(refined.predict(config, query, "elapsed") - true(0.3))

    assert len(refined) > len(coarse)
    assert refined_err < coarse_err


def test_driver_validates_dims():
    with pytest.raises(ValueError):
        ProfilingDriver(make_app(), [ResourceDimension("ghost.cpu", (0.5,))])
    with pytest.raises(ValueError):
        ProfilingDriver(make_app(), [cpu_dim(0.5), cpu_dim(0.7)])


def test_driver_deterministic_given_seed():
    d1 = ProfilingDriver(make_app(), [cpu_dim(0.5, 1.0)], seed=3)
    d2 = ProfilingDriver(make_app(), [cpu_dim(0.5, 1.0)], seed=3)
    db1, db2 = d1.profile(), d2.profile()
    assert db1.to_dict() == db2.to_dict()


def test_workload_factory_receives_context():
    seen = []

    def factory(config, point, seed):
        seen.append((dict(config), dict(point), seed))
        return "WL"

    driver = ProfilingDriver(make_app(), [cpu_dim(1.0)], workload_factory=factory)
    driver.profile(configs=[Configuration({"work": 50})])
    assert seen == [({"work": 50}, {"node.cpu": 1.0}, seen[0][2])]
