"""Tests for the one-call autoprofile pipeline."""

import pytest

from repro.profiling import ResourceDimension, ResourcePoint, autoprofile
from repro.tunable import (
    ConfigSpace,
    Configuration,
    ControlParameter,
    ExecutionEnv,
    HostComponent,
    QoSMetric,
    TaskGraph,
    TaskSpec,
    TunableApp,
)


def app_with_redundancy():
    """Three configs: 'fast', 'slow' (dominated), and 'fast_twin' (merged)."""
    WORK = {"fast": 50.0, "slow": 200.0, "fast_twin": 50.5}
    space = ConfigSpace([ControlParameter("variant", tuple(WORK))])
    env = ExecutionEnv([HostComponent("node", cpu_speed=100.0)])

    def launcher(rt):
        def main():
            sb = rt.sandbox("node")
            t0 = rt.sim.now
            yield sb.compute(WORK[rt.config.variant])
            rt.qos.update("elapsed", rt.sim.now - t0, time=rt.sim.now)

        return rt.sim.process(main())

    return TunableApp(
        "redundant", space, env,
        metrics=[QoSMetric("elapsed")],
        tasks=TaskGraph([TaskSpec("work", params=("variant",), resources=("node.cpu",))]),
        launcher=launcher,
    )


def dims():
    return [ResourceDimension("node.cpu", (0.2, 0.6, 1.0), lo=0.01, hi=1.0)]


def test_autoprofile_prunes_dominated_and_merges_twins():
    report = autoprofile(app_with_redundancy(), dims(), adaptive_rounds=1)
    assert report.configurations_declared == 3
    kept = {c.variant for c in report.pruned.configurations()}
    # 'slow' is dominated everywhere; 'fast_twin' merges into 'fast'.
    assert kept == {"fast"}
    assert report.configurations_kept == 1
    assert Configuration({"variant": "fast_twin"}) in report.merged_into
    assert report.samples_total >= 9
    assert "configurations declared" in report.summary()


def test_autoprofile_full_database_retained():
    report = autoprofile(app_with_redundancy(), dims(), adaptive_rounds=0)
    # The unpruned database still answers for every configuration.
    assert len(report.database.configurations()) == 3
    slow = Configuration({"variant": "slow"})
    assert report.database.predict(
        slow, ResourcePoint({"node.cpu": 1.0}), "elapsed"
    ) == pytest.approx(2.0)


def test_autoprofile_refinement_adds_samples():
    base = autoprofile(app_with_redundancy(), dims(), adaptive_rounds=0)
    refined = autoprofile(
        app_with_redundancy(), dims(), adaptive_rounds=2, per_round=4
    )
    assert refined.samples_total > base.samples_total
