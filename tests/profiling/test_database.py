"""Tests for the performance database: queries, pruning, persistence."""

import pytest

from repro.profiling import (
    DatabaseError,
    PerformanceDatabase,
    Record,
    ResourcePoint,
    curvature_scores,
    maximal_subset,
    merge_similar,
    propose_refinements,
    prune_database,
)
from repro.tunable import Configuration, QoSMetric


def cfg(**kw):
    return Configuration(kw)


def pt(**kw):
    return ResourcePoint({k.replace("_", "."): v for k, v in kw.items()})


def build_db():
    """Two configs over a 1-D cpu axis with a crossover at cpu=0.5."""
    db = PerformanceDatabase("app", ["client.cpu"])
    for cpu in (0.2, 0.5, 1.0):
        # Config A: cheap fixed cost, poor scaling: t = 2 + 4*(1-cpu)
        db.add(
            Record(cfg(c="A"), pt(client_cpu=cpu), {"t": 2 + 4 * (1 - cpu)})
        )
        # Config B: t = 4 - cpu (better at low cpu, worse at high cpu)
        db.add(Record(cfg(c="B"), pt(client_cpu=cpu), {"t": 4 - cpu}))
    return db


def test_add_and_len():
    db = build_db()
    assert len(db) == 6
    assert len(db.configurations()) == 2
    assert len(db.points_for(cfg(c="A"))) == 3


def test_add_replaces_same_key():
    db = build_db()
    db.add(Record(cfg(c="A"), pt(client_cpu=0.2), {"t": 99.0}))
    assert len(db) == 6
    assert db.record_at(cfg(c="A"), pt(client_cpu=0.2)).metrics["t"] == 99.0


def test_dims_mismatch_rejected():
    db = build_db()
    with pytest.raises(DatabaseError):
        db.add(Record(cfg(c="A"), pt(client_network=1.0), {"t": 1.0}))


def test_predict_interpolates():
    db = build_db()
    # A at cpu=0.35: linear between 0.2 (5.2) and 0.5 (4.0) -> 4.6
    assert db.predict(cfg(c="A"), pt(client_cpu=0.35), "t") == pytest.approx(4.6)


def test_predict_all_metrics():
    db = build_db()
    out = db.predict(cfg(c="B"), pt(client_cpu=0.5))
    assert out == {"t": pytest.approx(3.5)}


def test_predict_unknown_config_or_metric():
    db = build_db()
    with pytest.raises(DatabaseError):
        db.predict(cfg(c="Z"), pt(client_cpu=0.5), "t")
    with pytest.raises(DatabaseError):
        db.predict(cfg(c="A"), pt(client_cpu=0.5), "nope")
    with pytest.raises(DatabaseError):
        db.predict(cfg(c="A"), pt(client_network=1.0), "t")


def test_lookup_nearest_discrete():
    db = build_db()
    rec = db.lookup_nearest(cfg(c="A"), pt(client_cpu=0.55))
    assert rec.point == pt(client_cpu=0.5)
    rec = db.lookup_nearest(cfg(c="A"), pt(client_cpu=0.9))
    assert rec.point == pt(client_cpu=1.0)


def test_metric_names_and_remove():
    db = build_db()
    assert db.metric_names() == ["t"]
    db.remove_config(cfg(c="A"))
    assert len(db.configurations()) == 1


def test_roundtrip_persistence(tmp_path):
    db = build_db()
    path = tmp_path / "db.json"
    db.save(path)
    loaded = PerformanceDatabase.load(path)
    assert len(loaded) == 6
    assert loaded.resource_dims == ["client.cpu"]
    assert loaded.predict(cfg(c="A"), pt(client_cpu=0.35), "t") == pytest.approx(4.6)


# ---------------------------------------------------------------- pruning


def test_maximal_subset_keeps_both_crossover_configs():
    db = build_db()
    metric = QoSMetric("t", better="lower")
    subset = maximal_subset(db, metric)
    # A wins at cpu=1.0 (2 < 3), B wins at cpu=0.2 (3.8 < 5.2).
    assert {c.label() for c in subset} == {"c=A", "c=B"}


def test_maximal_subset_drops_dominated_config():
    db = build_db()
    # C is strictly worse than both everywhere.
    for cpu in (0.2, 0.5, 1.0):
        db.add(Record(cfg(c="C"), pt(client_cpu=cpu), {"t": 100.0}))
    subset = maximal_subset(db, QoSMetric("t", better="lower"))
    assert {c.label() for c in subset} == {"c=A", "c=B"}


def test_merge_similar_groups_twins():
    db = build_db()
    # D behaves within 1% of A everywhere.
    for cpu in (0.2, 0.5, 1.0):
        base = 2 + 4 * (1 - cpu)
        db.add(Record(cfg(c="D"), pt(client_cpu=cpu), {"t": base * 1.005}))
    rep = merge_similar(db, [QoSMetric("t")], rtol=0.05)
    assert rep[cfg(c="D")] == rep[cfg(c="A")]
    assert rep[cfg(c="B")] == cfg(c="B")


def test_prune_database_end_to_end():
    db = build_db()
    for cpu in (0.2, 0.5, 1.0):
        db.add(Record(cfg(c="C"), pt(client_cpu=cpu), {"t": 100.0}))  # dominated
        db.add(
            Record(cfg(c="D"), pt(client_cpu=cpu), {"t": (2 + 4 * (1 - cpu)) * 1.001})
        )  # twin of A
    pruned = prune_database(db, [QoSMetric("t", better="lower")])
    labels = {c.label() for c in pruned.configurations()}
    assert labels == {"c=A", "c=B"}
    # Original untouched.
    assert len(db.configurations()) == 4


# ------------------------------------------------------------- sensitivity


def test_curvature_zero_for_linear_data():
    db = build_db()  # both configs are linear in cpu
    scores = curvature_scores(db, cfg(c="A"), "t", "client.cpu")
    assert scores
    assert all(s == pytest.approx(0.0, abs=1e-12) for _, s in scores)


def test_curvature_flags_kink():
    db = PerformanceDatabase("app", ["client.cpu"])
    # Piecewise: flat then steep (a knee at 0.5).
    for cpu, t in [(0.1, 10.0), (0.5, 10.0), (0.9, 2.0)]:
        db.add(Record(cfg(c="K"), pt(client_cpu=cpu), {"t": t}))
    scores = curvature_scores(db, cfg(c="K"), "t", "client.cpu")
    (point, score), = scores
    assert point == pt(client_cpu=0.5)
    assert score > 0.3


def test_propose_refinements_targets_kink_neighborhood():
    db = PerformanceDatabase("app", ["client.cpu"])
    for cpu, t in [(0.1, 10.0), (0.5, 10.0), (0.9, 2.0)]:
        db.add(Record(cfg(c="K"), pt(client_cpu=cpu), {"t": t}))
        db.add(Record(cfg(c="L"), pt(client_cpu=cpu), {"t": 5.0}))  # flat
    proposals = propose_refinements(db, ["t"], top_k=4)
    assert proposals
    assert all(p.config == cfg(c="K") for p in proposals)
    mids = {p.point["client.cpu"] for p in proposals}
    assert mids == {0.3, 0.7}


def test_propose_refinements_no_curvature_no_proposals():
    db = build_db()
    assert propose_refinements(db, ["t"], min_score=0.02) == []
