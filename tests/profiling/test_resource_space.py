"""Tests for resource dimensions, points, and sampling plans."""

import pytest

from repro.profiling import (
    ResourceDimension,
    ResourcePoint,
    grid_plan,
    latin_hypercube_plan,
    limits_for_point,
    random_plan,
    vary_one_plan,
)


def dims_2d():
    return [
        ResourceDimension("client.cpu", (0.2, 0.5, 1.0), lo=0.01, hi=1.0),
        ResourceDimension("client.network", (50e3, 500e3), lo=1.0),
    ]


def test_dimension_properties():
    d = ResourceDimension("client.cpu", (0.1, 0.5))
    assert d.host == "client"
    assert d.kind == "cpu"
    assert d.clip(2.0) == 2.0  # default hi is inf


def test_dimension_validation():
    with pytest.raises(ValueError):
        ResourceDimension("nodot", (1.0,))
    with pytest.raises(ValueError):
        ResourceDimension("h.gpu", (1.0,))
    with pytest.raises(ValueError):
        ResourceDimension("h.cpu", ())
    with pytest.raises(ValueError):
        ResourceDimension("h.cpu", (0.5, 0.2))  # not increasing
    with pytest.raises(ValueError):
        ResourceDimension("h.cpu", (0.5, 0.5))  # duplicates
    with pytest.raises(ValueError):
        ResourceDimension("h.cpu", (0.5, 2.0), lo=0.0, hi=1.0)


def test_point_mapping_semantics():
    p = ResourcePoint({"client.cpu": 0.5, "client.network": 100.0})
    assert p["client.cpu"] == 0.5
    assert len(p) == 2
    assert p == {"client.cpu": 0.5, "client.network": 100.0}
    assert hash(p) == hash(ResourcePoint({"client.network": 100, "client.cpu": 0.5}))


def test_point_with_():
    p = ResourcePoint({"a.cpu": 0.5})
    q = p.with_(**{"a.cpu": 0.9})
    assert q["a.cpu"] == 0.9
    assert p["a.cpu"] == 0.5


def test_point_immutable():
    p = ResourcePoint({"a.cpu": 0.5})
    with pytest.raises(TypeError):
        p.anything = 1


def test_limits_for_point():
    p = ResourcePoint(
        {"client.cpu": 0.4, "client.network": 500e3, "server.memory": 2048}
    )
    limits = limits_for_point(p)
    assert limits["client"].cpu_share == 0.4
    assert limits["client"].net_bw == 500e3
    assert limits["client"].mem_pages is None
    assert limits["server"].mem_pages == 2048
    assert limits["server"].cpu_share is None


def test_grid_plan_cartesian():
    plan = grid_plan(dims_2d())
    assert len(plan) == 6
    assert len(set(plan)) == 6
    assert ResourcePoint({"client.cpu": 0.2, "client.network": 50e3}) in plan


def test_grid_plan_empty_dims():
    with pytest.raises(ValueError):
        grid_plan([])


def test_vary_one_plan():
    base = ResourcePoint({"client.cpu": 0.5, "client.network": 500e3})
    plan = vary_one_plan(dims_2d(), "client.cpu", base)
    assert [p["client.cpu"] for p in plan] == [0.2, 0.5, 1.0]
    assert all(p["client.network"] == 500e3 for p in plan)
    with pytest.raises(ValueError):
        vary_one_plan(dims_2d(), "nope.cpu", base)


def test_random_plan_within_bounds_and_deterministic():
    plan1 = random_plan(dims_2d(), count=20, seed=1)
    plan2 = random_plan(dims_2d(), count=20, seed=1)
    assert plan1 == plan2
    for p in plan1:
        assert 0.2 <= p["client.cpu"] <= 1.0
        assert 50e3 <= p["client.network"] <= 500e3
    assert random_plan(dims_2d(), count=20, seed=2) != plan1
    with pytest.raises(ValueError):
        random_plan(dims_2d(), count=0)


def test_latin_hypercube_stratification():
    dims = [ResourceDimension("h.cpu", (0.0, 1.0))]
    plan = latin_hypercube_plan(dims, count=10, seed=3)
    values = sorted(p["h.cpu"] for p in plan)
    # Exactly one sample per stratum of width 0.1.
    for i, v in enumerate(values):
        assert i * 0.1 <= v <= (i + 1) * 0.1
    with pytest.raises(ValueError):
        latin_hypercube_plan(dims, count=0)
