"""Tests for the interpolation engines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.profiling import InterpolationError, Interpolator


def test_constant_single_sample():
    interp = Interpolator([[1.0]], [5.0])
    assert interp.kind == "constant"
    assert interp([99.0]) == 5.0


def test_1d_linear_between_samples():
    interp = Interpolator([[0.0], [10.0]], [0.0, 100.0])
    assert interp.kind == "linear-1d"
    assert interp([5.0]) == pytest.approx(50.0)


def test_1d_extrapolation_linear():
    interp = Interpolator([[0.0], [1.0], [2.0]], [0.0, 1.0, 4.0])
    # Low end: slope 1 -> f(-1) = -1.  High end: slope 3 -> f(3) = 7.
    assert interp([-1.0]) == pytest.approx(-1.0)
    assert interp([3.0]) == pytest.approx(7.0)


def test_1d_exact_at_samples():
    xs = [[0.0], [1.0], [2.5], [7.0]]
    ys = [3.0, -1.0, 4.0, 0.5]
    interp = Interpolator(xs, ys)
    for x, y in zip(xs, ys):
        assert interp(x) == pytest.approx(y)


def test_2d_grid_multilinear():
    # f(x, y) = 2x + 3y sampled on a 3x3 grid is recovered exactly.
    X, y = [], []
    for a in (0.0, 1.0, 2.0):
        for b in (0.0, 5.0, 10.0):
            X.append([a, b])
            y.append(2 * a + 3 * b)
    interp = Interpolator(X, y)
    assert interp.kind == "multilinear-grid"
    assert interp([0.5, 2.5]) == pytest.approx(2 * 0.5 + 3 * 2.5)
    assert interp([1.5, 7.5]) == pytest.approx(2 * 1.5 + 3 * 7.5)


def test_2d_grid_query_outside_clips_to_box():
    X = [[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]]
    y = [0.0, 1.0, 2.0, 3.0]
    interp = Interpolator(X, y)
    assert interp([5.0, 5.0]) == pytest.approx(3.0)
    assert interp([-5.0, -5.0]) == pytest.approx(0.0)


def test_2d_scattered_linear_inside_hull():
    X = [[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0], [0.5, 0.3]]
    y = [x[0] + x[1] for x in X]
    interp = Interpolator(X, y)
    assert interp.kind == "scattered"
    assert interp([0.4, 0.4]) == pytest.approx(0.8, abs=1e-9)


def test_2d_scattered_nearest_outside_hull():
    X = [[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [0.4, 0.4]]
    y = [1.0, 2.0, 3.0, 4.0]
    interp = Interpolator(X, y)
    # Far outside the hull: nearest neighbour is (1, 0).
    assert interp([3.0, 0.0]) == pytest.approx(2.0)


def test_duplicate_sample_locations_averaged():
    interp = Interpolator([[0.0], [0.0], [1.0]], [2.0, 4.0, 10.0])
    assert interp([0.0]) == pytest.approx(3.0)


def test_bad_shapes_rejected():
    with pytest.raises(InterpolationError):
        Interpolator([], [])
    with pytest.raises(InterpolationError):
        Interpolator([[1.0], [2.0]], [1.0])
    interp = Interpolator([[0.0], [1.0]], [0.0, 1.0])
    with pytest.raises(InterpolationError):
        interp([0.0, 1.0])  # wrong query dimensionality


def test_collinear_scattered_points_fall_back_to_nearest():
    # All points on the line x=y: LinearND cannot triangulate.
    X = [[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]]
    y = [0.0, 1.0, 2.0]
    interp = Interpolator(X, y)
    assert interp([1.9, 2.1]) == pytest.approx(2.0)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            st.floats(min_value=-100, max_value=100, allow_nan=False),
        ),
        min_size=1,
        max_size=20,
        unique_by=lambda t: t[0],
    )
)
@settings(max_examples=100, deadline=None)
def test_1d_interpolation_exact_at_samples_property(samples):
    X = [[x] for x, _ in samples]
    y = [v for _, v in samples]
    interp = Interpolator(X, y)
    for (x, v) in samples:
        assert interp([x]) == pytest.approx(v, abs=1e-6 * (1 + abs(v)))
