"""Kernel self-profiler tests: byte-invisibility, sampling arithmetic,
bucket attribution, exporters, and the ``repro perf`` CLI.

The profiler's headline guarantee is the *determinism split*: attaching
it must not change a single byte of simulation output, its virtual-time
telemetry (step/push counts, tie census, bucket event counts) must be a
pure function of the seeded run, and only the wall-clock seconds vary
host to host.  The wall-clock tests here use an injected fake clock so
they are exact, not statistical.
"""

import json

import pytest

from repro.cli import main
from repro.experiments import fig5_database, run_chaos, run_recovery
from repro.obs import KernelProfiler, ObsError, to_chrome_profile, to_folded
from repro.sim import Simulator


class FakeClock:
    """Deterministic host clock: each read advances by ``tick``."""

    def __init__(self, tick=0.0001):
        self.t = 0.0
        self.tick = tick

    def __call__(self):
        self.t += self.tick
        return self.t

    def advance(self, dt):
        self.t += dt


def spin(sim, n, name=""):
    def proc():
        for _ in range(n):
            yield sim.timeout(1.0)

    return sim.process(proc(), name=name)


# -- byte-invisibility ------------------------------------------------------


def test_fig5_byte_identical_with_profiler():
    db_bare, _, _ = fig5_database(seed=0)
    db_prof, _, _ = fig5_database(seed=0, profiler=KernelProfiler())
    assert json.dumps(db_prof.to_dict(), sort_keys=True) == json.dumps(
        db_bare.to_dict(), sort_keys=True
    )


def test_chaos_byte_identical_with_profiler():
    _, bare = run_chaos(seed=0)
    _, prof = run_chaos(seed=0, profiler=KernelProfiler(full=True))
    assert json.dumps(prof, sort_keys=True) == json.dumps(bare, sort_keys=True)


def test_recovery_byte_identical_with_profiler():
    _, bare = run_recovery(seed=0)
    _, prof = run_recovery(seed=0, profiler=KernelProfiler())
    assert json.dumps(prof, sort_keys=True) == json.dumps(bare, sort_keys=True)


def test_profile_deterministic_modulo_wall_clock():
    """Same seed, two runs: everything but the seconds is identical."""
    summaries, foldeds = [], []
    for _ in range(2):
        profiler = KernelProfiler(full=True)
        run_chaos(seed=0, profiler=profiler)
        summaries.append(profiler.summary())
        foldeds.append(to_folded(profiler))
    a, b = summaries
    assert a["sim"] == b["sim"]  # steps, pushes, ties, mix, fluid: exact
    assert {
        name: bucket["count"] for name, bucket in a["wall"]["buckets"].items()
    } == {
        name: bucket["count"] for name, bucket in b["wall"]["buckets"].items()
    }
    # Folded output: the stacks (all but the trailing value) are stable.
    stacks = [
        [line.rsplit(" ", 1)[0] for line in folded.splitlines()]
        for folded in foldeds
    ]
    assert stacks[0] == stacks[1]
    assert stacks[0] == sorted(stacks[0])


# -- sampling arithmetic ----------------------------------------------------


def test_steps_and_pushes_exact_in_every_mode():
    def counts(**kw):
        sim = Simulator()
        spin(sim, 100, name="a")
        spin(sim, 57, name="b")
        profiler = KernelProfiler(clock=FakeClock(), **kw)
        profiler.attach(sim)
        sim.run()
        profiler.detach()
        return profiler.steps, profiler.pushes

    expected = counts(full=True)
    assert expected[0] > 150
    assert counts(burst=2, cycle=4) == expected
    assert counts(burst=2, cycle=3) == expected
    assert counts(burst=16, cycle=1000) == expected  # ends mid-off-phase


def test_steps_survive_detach_mid_off_phase():
    """A detach inside an off phase must not corrupt the arithmetic."""
    profiler = KernelProfiler(clock=FakeClock(), burst=2, cycle=50)
    total = 0
    for n in (30, 41, 7):  # each run ends mid-off-phase
        sim = Simulator()
        profiler.attach(sim)  # before spin: the init push counts too
        spin(sim, n)
        sim.run()
        profiler.detach()
        total += n + 2  # n timeouts + init + exit
    assert profiler.steps == total
    assert profiler.pushes == total
    assert profiler.attaches == 3


def test_pushes_count_events_left_in_heap():
    sim = Simulator()
    profiler = KernelProfiler(clock=FakeClock(), full=True)
    profiler.attach(sim)
    spin(sim, 5)
    spin(sim, 5)
    sim.run(until=2.5)  # stop mid-run: later timeouts still queued
    assert profiler.pushes > profiler.steps
    live = profiler.pushes
    profiler.detach()
    assert profiler.pushes == live  # folding at detach changes nothing


# -- attribution ------------------------------------------------------------


def test_bucket_names_cover_process_lifecycle_and_callbacks():
    sim = Simulator()
    spin(sim, 3, name="worker")

    fired = []

    def on_tick():
        fired.append(sim.now)

    sim.schedule_callback(1.5, on_tick)
    sim.timeout(2.5)  # scheduled, never waited on

    profiler = KernelProfiler(clock=FakeClock(), full=True)
    profiler.attach(sim)
    sim.run()
    profiler.detach()

    names = set(profiler.buckets)
    assert "kernel;init;proc:worker" in names
    assert "kernel;Timeout;proc:worker" in names
    assert "kernel;exit;proc:worker" in names
    assert any(
        name.startswith("kernel;Timeout;call:") and "on_tick" in name
        for name in names
    )
    assert "kernel;Timeout;unwaited" in names
    assert fired == [1.5]

    mix = profiler.event_mix
    assert mix["init"] == 1
    assert mix["exit"] == 1
    assert mix["Timeout"] == 3 + 1 + 1  # resumes + callback + unwaited


def test_wall_attribution_with_fake_clock_is_exact():
    clock = FakeClock(tick=0.001)
    sim = Simulator()
    spin(sim, 10, name="w")
    profiler = KernelProfiler(clock=clock, full=True)
    profiler.attach(sim)
    sim.run()
    profiler.detach()
    # One clock read per observed step + one closing read: every tick of
    # host time lands in a named bucket, none is lost or double-counted.
    total_counts = sum(acc[0] for acc in profiler.buckets.values())
    assert total_counts == profiler.steps
    assert profiler.total_wall == pytest.approx(profiler.steps * clock.tick)
    assert profiler.coverage == 1.0
    assert "kernel;external" not in profiler.buckets


def test_run_pause_keeps_host_time_between_runs_out_of_buckets():
    clock = FakeClock(tick=0.0001)
    sim = Simulator()
    spin(sim, 5, name="w")
    profiler = KernelProfiler(clock=clock, full=True)
    profiler.attach(sim)
    sim.run()
    clock.advance(10.0)  # host-side work between run segments
    spin(sim, 5, name="w")
    sim.run()
    profiler.detach()
    assert profiler.total_wall < 1.0  # the 10 s never reached a bucket
    assert profiler.coverage == 1.0


def test_tie_census_counts_same_instant_windows():
    sim = Simulator()

    def waiter():
        yield sim.timeout(1.0)

    for _ in range(3):  # three resumes at t=1.0, same priority
        sim.process(waiter())
    profiler = KernelProfiler(clock=FakeClock(), full=True)
    profiler.attach(sim)
    sim.run()
    profiler.detach()
    summary = profiler.summary()
    ties = summary["sim"]["ties"]
    assert ties["max_window"] >= 3
    assert ties["windows"] >= 1
    assert sum(ties["census"].values()) == ties["windows"]


def test_fluid_telemetry_aggregates_per_share():
    profiler = KernelProfiler(clock=FakeClock())
    profiler.fluid_event("cpu", "submit")
    profiler.fluid_event("cpu", "set_speed")
    profiler.fluid_reschedule("cpu", fanout=3)
    profiler.fluid_reschedule("net", fanout=7)
    fluid = profiler.summary()["sim"]["fluid"]
    assert fluid["updates"] == 2
    assert fluid["reschedules"] == 2
    assert fluid["fanout_sum"] == 10
    assert fluid["fanout_max"] == 7
    assert set(fluid["shares"]) == {"cpu", "net"}


def test_chaos_fluid_updates_observed():
    profiler = KernelProfiler()
    run_chaos(seed=0, profiler=profiler)
    fluid = profiler.summary()["sim"]["fluid"]
    assert fluid["updates"] > 0
    assert fluid["reschedules"] > 0
    assert fluid["fanout_max"] >= 1


# -- lifecycle errors -------------------------------------------------------


def test_attach_twice_raises():
    sim = Simulator()
    profiler = KernelProfiler(clock=FakeClock())
    profiler.attach(sim)
    with pytest.raises(ObsError):
        profiler.attach(Simulator())
    with pytest.raises(ObsError):
        KernelProfiler(clock=FakeClock()).attach(sim)
    profiler.detach()
    assert sim.perf is None


def test_detach_without_attach_is_noop():
    profiler = KernelProfiler(clock=FakeClock())
    assert profiler.detach() is profiler


def test_bad_sampling_schedule_rejected():
    with pytest.raises(ObsError):
        KernelProfiler(burst=1, cycle=64)
    with pytest.raises(ObsError):
        KernelProfiler(burst=64, cycle=64)


# -- exporters --------------------------------------------------------------


def profiled_sim():
    sim = Simulator()
    spin(sim, 20, name="w")
    profiler = KernelProfiler(clock=FakeClock(tick=0.001), full=True)
    profiler.attach(sim)
    sim.run()
    profiler.detach()
    return profiler


def test_to_folded_integer_microseconds():
    folded = to_folded(profiled_sim())
    for line in folded.splitlines():
        stack, value = line.rsplit(" ", 1)
        assert stack.startswith("kernel;")
        assert int(value) >= 0
    assert any(";proc:w " in line for line in folded.splitlines())


def test_to_chrome_profile_tiles_buckets_end_to_end():
    payload = to_chrome_profile(profiled_sim())
    events = payload["traceEvents"]
    assert events
    cursor = 0
    durations = []
    for event in events:
        assert event["ph"] == "X"
        assert event["ts"] == cursor
        cursor += event["dur"]
        durations.append(event["dur"])
    assert durations == sorted(durations, reverse=True)
    assert payload["otherData"]["coverage"] == 1.0


# -- the repro perf CLI -----------------------------------------------------


def test_perf_cli_human_rendering(capsys):
    assert main(["perf", "chaos"]) == 0
    out = capsys.readouterr().out
    assert "kernel profile" in out
    assert "sampling: full" in out
    assert "coverage" in out


def test_perf_cli_flame_attributes_kernel_wall(tmp_path):
    out_file = tmp_path / "chaos.folded"
    assert main(["perf", "chaos", "--flame", "--out", str(out_file)]) == 0
    lines = out_file.read_text().splitlines()
    assert lines
    named_us = 0
    for line in lines:
        stack, value = line.rsplit(" ", 1)
        assert stack.startswith("kernel;")
        if stack != "kernel;external":
            named_us += int(value)
    assert named_us > 0
    assert any(stack.startswith("kernel;FluidShare") or ";call:" in stack
               for stack in (line.rsplit(" ", 1)[0] for line in lines))


def test_perf_cli_json_summary(tmp_path):
    out_file = tmp_path / "perf.json"
    assert main(
        ["perf", "recovery", "--json", "--out", str(out_file)]
    ) == 0
    payload = json.loads(out_file.read_text())
    assert payload["experiment"] == "recovery"
    perf = payload["perf"]
    assert perf["sim"]["steps"] > 0
    assert perf["sim"]["sampling"]["mode"] == "full"
    # The acceptance bar: >= 95 % of measured kernel wall-clock is
    # attributed to named buckets.
    assert perf["wall"]["coverage"] >= 0.95


def test_perf_cli_chrome_output(tmp_path):
    out_file = tmp_path / "perf.chrome.json"
    assert main(["perf", "fig5", "--chrome", "--out", str(out_file)]) == 0
    payload = json.loads(out_file.read_text())
    assert payload["traceEvents"]
    assert all(e["ph"] == "X" for e in payload["traceEvents"])
