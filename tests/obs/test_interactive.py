"""Interactive context: inspection passivity, interventions, replay.

The load-bearing guarantee: a run driven through ``step()``/``run_until``
with every inspector read at every pause is byte-identical — traces,
metrics, usage account, and experiment payload — to the monolithic
``run_<name>()`` entry point.  And an intervened run is bit-reproducible
from its recorded intervention script alone.
"""

import itertools
import json

import pytest

from repro.obs import (
    InteractiveContext,
    SCENARIOS,
    TraceRecorder,
    UsageAccountant,
    register_scenario,
    replay,
    to_jsonl,
)


def _signature(recorder, usage, payload):
    return (
        to_jsonl(recorder.records),
        json.dumps(recorder.metrics.snapshot(), sort_keys=True),
        json.dumps(usage.summary(), sort_keys=True) if usage else None,
        json.dumps(payload, sort_keys=True, default=str),
    )


def _reference(runner, seed):
    recorder = TraceRecorder()
    usage = UsageAccountant(metrics=recorder.metrics)
    _fig, payload = runner(seed=seed, recorder=recorder, usage=usage)
    return _signature(recorder, usage, payload)


def _stepped_with_inspection(scenario, seed, pause_every=5.0):
    """Drive in fixed-size segments, reading EVERY inspector at each pause."""
    ctx = InteractiveContext(scenario, seed=seed)
    for i in itertools.count(1):
        ctx.run_until(i * pause_every)
        snap = ctx.inspect.snapshot()
        json.dumps(snap, sort_keys=True)  # every section must be JSON-able
        if ctx.done:
            break
    _fig, payload = ctx.finish()
    return ctx, _signature(ctx.recorder, ctx.usage, payload)


def test_fig5_stepped_inspection_byte_identical():
    from repro.experiments.fig5 import run_fig5_session

    ref = _reference(run_fig5_session, seed=0)
    ctx, got = _stepped_with_inspection("fig5", seed=0)
    assert got == ref
    assert ctx.steps > 0 and ctx.scene.finalized


def test_chaos_stepped_inspection_byte_identical():
    from repro.experiments.chaos import run_chaos

    ref = _reference(run_chaos, seed=3)
    _ctx, got = _stepped_with_inspection("chaos", seed=3)
    assert got == ref


def test_recovery_stepped_inspection_byte_identical():
    from repro.experiments.recovery import run_recovery

    ref = _reference(run_recovery, seed=2)
    ctx, got = _stepped_with_inspection("recovery", seed=2)
    assert got == ref
    # Recovery-only inspectors were live during the run.
    assert ctx.inspect.supervision() is not None
    assert ctx.inspect.faults() is not None


def test_interleaved_inspection_leaves_trace_unchanged():
    """Satellite regression: inspecting between steps must not perturb
    lazy-folded FluidShare state or the tracer (same stepping, with and
    without inspector reads, bit-for-bit)."""
    def run(inspect):
        ctx = InteractiveContext("fig5", seed=1)
        share = ctx.scene.testbed.hosts["client"].cpu.share
        for i in itertools.count(1):
            ctx.run_until(i * 2.5)
            if inspect:
                before = (share._last_update, share._timer_gen)
                ctx.inspect.shares()
                ctx.inspect.queues()
                ctx.inspect.usage()
                ctx.inspect.monitor()
                ctx.inspect.controller()
                share.peek()
                share.served_now()
                # Passive reads advance neither the lazy fold point nor
                # the completion-timer generation.
                assert (share._last_update, share._timer_gen) == before
            if ctx.done:
                break
        _fig, payload = ctx.finish()
        return _signature(ctx.recorder, ctx.usage, payload)

    assert run(inspect=True) == run(inspect=False)


def test_run_until_predicate_pauses_at_first_switch():
    ctx = InteractiveContext("fig5", seed=0)
    ctx.run_until(lambda c: len(c.switches()) >= 1)
    assert len(ctx.switches()) == 1
    assert not ctx.done
    # The controller saw the violation that motivated the switch.
    controller = ctx.inspect.controller()
    assert controller["phase"] in ("steady", "settling", "reconfiguring")
    assert controller["candidates"]
    assert ctx.inspect.monitor()["estimates"]


def test_interventions_recorded_and_replayed_byte_identically():
    ctx = InteractiveContext("fig5", seed=0)
    ctx.run_until(15.0)
    ctx.perturb("client", cpu_share=0.5, net_bw=10e6)
    ctx.run_until(40.0)
    ctx.inject(
        {"events": [{"kind": "crash", "host": "server", "at": 45.0,
                     "until": 48.0}]}
    )
    _fig, payload = ctx.finish()
    script = ctx.script()
    assert len(ctx.interventions) == 2
    assert all(
        set(entry) == {"t", "steps", "kind", "args"}
        for entry in json.loads(script)
    )
    # Interventions are spans in the trace (cat "interactive").
    names = [r.name for r in ctx.recorder.records if r.cat == "interactive"]
    assert names == ["interactive.perturb", "interactive.inject"]

    replayed = replay("fig5", 0, script)
    _fig2, payload2 = replayed.finish()
    assert _signature(replayed.recorder, replayed.usage, payload2) == \
        _signature(ctx.recorder, ctx.usage, payload)

    # And the intervened run genuinely differs from the clean one.
    clean = InteractiveContext("fig5", seed=0)
    _fig3, payload3 = clean.finish()
    assert json.dumps(payload3, sort_keys=True) != json.dumps(
        payload, sort_keys=True
    )


def test_force_config_and_resume_normal():
    ctx = InteractiveContext("fig5", seed=0)
    ctx.run_until(10.0)
    ctx.force_config({"dR": 160, "c": "lzw", "l": 4}, reason="operator-pin")
    assert ctx.inspect.controller()["pinned"]
    ctx.run_until(12.0)
    ctx.resume_normal(reason="operator-unpin")
    assert not ctx.inspect.controller()["pinned"]
    _fig, payload = ctx.finish()
    kinds = [e["kind"] for e in payload["events"]]
    assert "operator-pin" in kinds and "operator-unpin" in kinds


def test_fault_injection_into_faultfree_scenario_shows_in_inspector():
    ctx = InteractiveContext("fig5", seed=0)
    assert ctx.scene.injector is None and ctx.inspect.faults() is None
    ctx.run_until(10.0)
    ctx.inject(
        {"events": [{"kind": "link-down", "between": ["client", "server"],
                     "at": 12.0, "until": 13.0}]}
    )
    assert ctx.scene.injector is not None
    ctx.run_until(14.0)
    log = ctx.inspect.faults()["log"]
    assert any(entry.get("action") == "link-down" for entry in log)
    ctx.finish()


def test_snapshot_html_midflight_is_passive():
    def run(render):
        ctx = InteractiveContext("fig5", seed=0)
        ctx.run_until(30.0)
        html = ctx.snapshot_html() if render else None
        _fig, payload = ctx.finish()
        return html, _signature(ctx.recorder, ctx.usage, payload)

    html, sig_rendered = run(render=True)
    _none, sig_plain = run(render=False)
    assert sig_rendered == sig_plain
    assert html.startswith("<!DOCTYPE html>")
    assert "fig5" in html and "Live state" in html
    assert "<script" not in html  # no-JS contract


def test_finish_is_idempotent_and_guards_further_driving():
    ctx = InteractiveContext("fig5", seed=0)
    result = ctx.finish()
    assert ctx.finish() is result
    with pytest.raises(RuntimeError):
        ctx.step()
    with pytest.raises(RuntimeError):
        ctx.perturb("client", cpu_share=0.5, net_bw=10e6)


def test_crowd_scenario_exposes_crowd_and_overload_inspectors():
    # The flash-crowd variant wires an OverloadGuard + BrownoutController;
    # scenario kwargs flow through InteractiveContext to the builder.
    ctx = InteractiveContext("crowd", seed=1, scenario="flash")
    ctx.run_until(20.0)
    crowd = ctx.inspect.crowd()
    assert crowd is not None and crowd["classes"]
    assert ctx.inspect.overload() is not None
    snap = ctx.inspect.snapshot()
    assert snap["scenario"] == "crowd" and "crowd" in snap


def test_scenario_registry_and_errors():
    assert set(SCENARIOS) >= {"fig5", "chaos", "recovery", "crowd"}
    with pytest.raises(KeyError):
        InteractiveContext("no-such-scenario")
    with pytest.raises(ValueError):
        register_scenario("bad", "not-a-module-colon-callable")


def test_uninstrumented_context_still_steps_and_finishes():
    ctx = InteractiveContext("fig5", seed=0, instrument=False)
    assert ctx.recorder is None and ctx.usage is None
    ctx.run_until(lambda c: len(c.switches()) >= 1)
    assert ctx.inspect.usage() is None
    _fig, payload = ctx.finish()
    assert payload["switches"]
