"""Smoke test: the interactive-session example runs and is deterministic."""

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


def _run_example():
    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH", "")) if p
    )
    out = subprocess.run(
        [sys.executable, str(REPO / "examples" / "interactive_session.py")],
        capture_output=True, text=True, check=True, env=env,
    )
    return out.stdout


def test_interactive_session_example_runs_and_is_deterministic():
    stdout = _run_example()
    assert "first switch" in stdout
    assert "replay is bit-identical" in stdout
    assert stdout.rstrip().endswith("interactive session OK")
    assert _run_example() == stdout
