"""Usage accounting: hand-checkable fixture vs. the share's own ground truth.

The two-process fixture is small enough to verify on paper:

* one CPU (``FluidShare``) at speed 2.0 work-units/s;
* process A submits 4.0 units, process B submits 8.0 units, equal weight.

GPS evolution: both run at rate 1.0 until A finishes at t=4 (A served 4,
B served 4); B alone then runs at rate 2.0 and finishes at t=6 (B served
8).  Total served 12 over whatever window the clock covers.
"""

import math

import pytest

from repro.obs import UsageAccountant
from repro.obs.usage import NO_CONFIG, UNATTRIBUTED, owner_label
from repro.sim import FluidShare, Simulator


class _Proc:
    def __init__(self, name):
        self.name = name


@pytest.fixture()
def fixture():
    sim = Simulator()
    share = FluidShare(sim, speed=2.0, name="cpu")
    usage = UsageAccountant()
    usage.attach(sim)
    usage.track_share("cpu", share, "cpu")
    return sim, share, usage


def test_two_process_account_matches_hand_calculation(fixture):
    sim, share, usage = fixture
    share.submit(4.0, weight=1.0, owner=_Proc("A"))
    share.submit(8.0, weight=1.0, owner=_Proc("B"))
    sim.run()
    usage.finish()

    entry = usage.resources["cpu"]
    assert entry.served == pytest.approx(12.0)
    assert entry.by_owner["A"] == pytest.approx(4.0)
    assert entry.by_owner["B"] == pytest.approx(8.0)
    # Clock stops at the last completion (t=6): capacity = 2.0 * 6.
    assert sim.now == pytest.approx(6.0)
    assert entry.capacity == pytest.approx(12.0)
    assert entry.utilization() == pytest.approx(1.0)


def test_account_agrees_with_utilization_since_ground_truth(fixture):
    sim, share, usage = fixture
    share.submit(4.0, weight=1.0, owner=_Proc("A"))
    share.submit(8.0, weight=1.0, owner=_Proc("B"))
    # Idle tail: a timer extends the window past the last completion, so
    # utilization drops below 1 and exercises the capacity integral.
    sim.schedule_callback(8.0, lambda: None)
    sim.run()
    usage.finish()

    truth = share.utilization_since(0.0, 0.0)
    entry = usage.resources["cpu"]
    assert truth == pytest.approx(12.0 / 16.0)
    assert entry.utilization() == pytest.approx(truth, abs=1e-9)
    # The three attribution views are the same work.
    assert sum(entry.by_owner.values()) == pytest.approx(entry.served)
    assert sum(entry.by_config.values()) == pytest.approx(entry.served)


def test_per_config_attribution_splits_at_safe_point(fixture):
    sim, share, usage = fixture
    usage.set_config("cfg-a", t=0.0)
    share.submit(4.0, weight=1.0, owner=_Proc("A"))
    share.submit(8.0, weight=1.0, owner=_Proc("B"))
    sim.run(until=5.0)
    # A runtime switch folds progress at the safe point before relabeling;
    # sync() is that fold for a hand-driven simulation.
    share.sync()
    usage.set_config("cfg-b")
    sim.run()
    usage.finish()

    entry = usage.resources["cpu"]
    # [0,4): A and B serve 4 each; [4,5): B alone serves 2 -> cfg-a = 10.
    assert entry.by_config["cfg-a"] == pytest.approx(10.0)
    # [5,6): B alone serves the remaining 2 -> cfg-b.
    assert entry.by_config["cfg-b"] == pytest.approx(2.0)
    assert usage.config_marks == [(0.0, "cfg-a"), (5.0, "cfg-b")]


def test_capacity_integral_exact_across_speed_change(fixture):
    sim, share, usage = fixture
    share.submit(20.0, weight=1.0, owner=_Proc("A"))
    sim.run(until=2.0)
    share.set_speed(0.5)  # speed tap folds capacity at the old rate
    sim.run()
    usage.finish()

    # [0,2): speed 2 -> capacity 4, served 4; then 16 remaining at 0.5
    # -> 32 s more, capacity 16.  Busy throughout: utilization 1.
    entry = usage.resources["cpu"]
    assert sim.now == pytest.approx(34.0)
    assert entry.capacity == pytest.approx(20.0)
    assert entry.served == pytest.approx(20.0)
    # Note: share.utilization_since() is NOT comparable here — it assumes
    # the *current* speed held over the whole window; the accountant's
    # speed tap integrates capacity exactly across the change.
    assert entry.utilization() == pytest.approx(1.0)


def test_utilization_series_is_time_weighted(fixture):
    sim, share, usage = fixture
    share.submit(4.0, weight=1.0, owner=_Proc("A"))
    share.submit(8.0, weight=1.0, owner=_Proc("B"))
    sim.schedule_callback(8.0, lambda: None)
    sim.run()
    usage.finish()

    series = usage.series("cpu")
    assert series is not None and series.samples
    # Capacity-weighted mean of the samples reproduces the overall
    # utilization (invariant 3 in the module docstring).
    total, weighted, prev_t = 0.0, 0.0, 0.0
    for t, u in series.samples:
        dt = t - prev_t
        weighted += u * dt
        total += dt
        prev_t = t
    assert weighted / total == pytest.approx(
        usage.resources["cpu"].utilization(), abs=1e-9
    )


def test_owner_label_fallbacks():
    assert owner_label(None) == UNATTRIBUTED
    assert owner_label(_Proc("sandbox-1")) == "sandbox-1"
    assert owner_label(object()) == "object"


def test_accounting_is_passive_no_events_no_rng(fixture):
    sim, share, usage = fixture
    share.submit(4.0, weight=1.0, owner=_Proc("A"))
    before_events = sim.scheduled_count if hasattr(sim, "scheduled_count") else None
    sim.run()
    usage.finish()
    summary = usage.summary()
    assert summary["resources"]["cpu"]["served"] == pytest.approx(4.0)
    assert summary["config_marks"] == []
    assert usage.active_config == NO_CONFIG
    assert math.isfinite(summary["elapsed"])


def test_attach_refuses_double_attachment(fixture):
    sim, _share, usage = fixture
    with pytest.raises(ValueError):
        usage.attach(sim)
    other = UsageAccountant()
    with pytest.raises(ValueError):
        other.attach(sim)
    usage.detach()
    other.attach(sim)  # fine after the first detached
    other.detach()
