"""Exporter round-trips and causal queries over synthetic traces."""

import pytest

from repro.obs import (
    TraceRecorder,
    adaptation_chains,
    chain,
    dwell_times,
    from_jsonl,
    summary,
    timeline,
    to_chrome,
    to_jsonl,
)


def _make_adaptation_trace() -> TraceRecorder:
    """A hand-built violation -> decision -> steering -> switch chain."""
    rec = TraceRecorder()
    rec.instant("config.initial", cat="adapt", t=0.0, config="A")
    v = rec.instant("monitor.violation", cat="adapt", t=10.0)
    d = rec.instant("sched.decision", cat="sched", parent=v, t=12.0, config="B")
    s = rec.begin("steer.request", cat="steer", parent=d, t=12.0)
    rec.instant("steer.retry", cat="steer", parent=s, t=14.0, attempt=1)
    rec.instant("config.switch", cat="adapt", parent=s, t=16.0, config="B")
    rec.end(s, t=16.0, outcome="ack")
    return rec


def test_jsonl_round_trip_preserves_everything():
    rec = _make_adaptation_trace()
    text = to_jsonl(rec.records)
    back = from_jsonl(text)
    assert [r.to_dict() for r in back] == [
        r.to_dict() for r in timeline(rec.records)
    ]
    # Round-tripped records answer the same causal queries.
    switch = [r for r in back if r.name == "config.switch"][0]
    names = [r.name for r in chain(back, switch.sid)]
    assert names == [
        "monitor.violation", "sched.decision", "steer.request", "config.switch"
    ]


def test_jsonl_deterministic_bytes():
    a = to_jsonl(_make_adaptation_trace().records)
    b = to_jsonl(_make_adaptation_trace().records)
    assert a == b
    assert a.endswith("\n")
    assert to_jsonl([]) == ""


def test_timeline_order_is_t0_then_sid():
    rec = TraceRecorder()
    late = rec.instant("late", t=5.0)
    early = rec.instant("early", t=1.0)
    tie_a = rec.instant("tie-a", t=3.0)
    tie_b = rec.instant("tie-b", t=3.0)
    ordered_sids = [r.sid for r in timeline(rec.records)]
    assert ordered_sids == [early, tie_a, tie_b, late]


def test_chain_unknown_sid_raises():
    rec = _make_adaptation_trace()
    with pytest.raises(KeyError):
        chain(rec.records, 999)


def test_adaptation_chains_finds_complete_chain():
    rec = _make_adaptation_trace()
    chains = adaptation_chains(rec.records)
    assert len(chains) == 1
    assert [r.name for r in chains[0]] == [
        "monitor.violation", "sched.decision", "steer.request", "config.switch"
    ]
    assert [r.t0 for r in chains[0]] == [10.0, 12.0, 12.0, 16.0]


def test_dwell_times_accumulate_per_config():
    rec = _make_adaptation_trace()
    # A from 0 to the switch at 16, B from 16 to the trace end (16).
    assert dwell_times(rec.records) == {"A": 16.0, "B": 0.0}
    rec.instant("config.switch", cat="adapt", t=20.0, config="A")
    rec.instant("tail", t=25.0)
    dwell = dwell_times(rec.records)
    assert dwell["A"] == pytest.approx(16.0 + 5.0)
    assert dwell["B"] == pytest.approx(4.0)
    assert dwell_times([]) == {}


def test_chrome_export_shape():
    rec = _make_adaptation_trace()
    payload = to_chrome(rec.records)
    events = payload["traceEvents"]
    spans = [e for e in events if e.get("ph") == "X"]
    instants = [e for e in events if e.get("ph") == "i"]
    meta = [e for e in events if e.get("ph") == "M"]
    assert len(spans) == 1 and spans[0]["name"] == "steer.request"
    assert spans[0]["ts"] == pytest.approx(12.0e6)
    assert spans[0]["dur"] == pytest.approx(4.0e6)
    assert len(instants) == 5
    assert all(e["s"] == "t" for e in instants)
    assert meta and meta[0]["name"] == "thread_name"
    assert all("sid" in e["args"] for e in spans + instants)


def test_summary_counts():
    rec = _make_adaptation_trace()
    s = summary(rec.records, rec.metrics)
    assert s["records"] == 6
    assert s["spans"] == 1 and s["instants"] == 5
    assert s["t_min"] == 0.0 and s["t_max"] == 16.0
    assert s["by_category"]["adapt"] == 3
    assert s["by_name"]["config.switch"] == 1
    assert s["metrics"] == {}
