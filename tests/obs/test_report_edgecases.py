"""render_comparison edge cases: empty traces, one-sided runs, disjoint metrics.

The comparison report is the artifact operators look at when two runs
disagree; these tests pin its behaviour on degenerate inputs where the
happy-path tests (full chaos traces) can't exercise the branches.
"""

from repro.obs import diff_metrics, diff_traces, render_comparison
from repro.obs.record import SpanRecord


def _rec(sid, name, t0, parent=None, **attrs):
    return SpanRecord(
        sid=sid, parent=parent, name=name, cat="test", kind="span", t0=t0,
        attrs=attrs,
    )


def _counter(value):
    return {"kind": "counter", "value": value}


# -- empty span lists ------------------------------------------------------


def test_comparison_of_two_empty_traces_is_identical():
    trace_diff = diff_traces([], [])
    metrics_diff = diff_metrics({}, {})
    assert trace_diff.identical and trace_diff.matched == 0
    assert trace_diff.first_divergence is None
    assert metrics_diff["identical"]

    html = render_comparison("a", "b", trace_diff, metrics_diff, "empty")
    assert html.startswith("<!DOCTYPE html>")
    assert "runs are structurally identical" in html
    assert "First divergence" not in html
    assert "Metric deltas" not in html
    assert "<script" not in html


def test_comparison_of_empty_traces_is_deterministic():
    args = ("a", "b", diff_traces([], []), diff_metrics({}, {}), "empty")
    assert render_comparison(*args) == render_comparison(*args)


# -- single-run input (one side empty) -------------------------------------


def test_single_run_against_empty_trace_diverges_on_side_a():
    records = [_rec(1, "root", 0.0), _rec(2, "work", 1.0, parent=1)]
    trace_diff = diff_traces(records, [])
    assert not trace_diff.identical
    assert trace_diff.matched == 0
    assert len(trace_diff.only_a) == 2 and not trace_diff.only_b
    divergence = trace_diff.first_divergence
    assert divergence is not None and divergence.side == "a"

    html = render_comparison(
        "full", "empty", trace_diff, diff_metrics({}, {}), "one-sided"
    )
    assert "First divergence" in html
    assert "root[0]" in html
    # The divergence's counterpart-in-B paragraph must not render: there
    # is no counterpart when the whole run is missing.
    assert "Counterpart in B" not in html


def test_single_run_against_empty_trace_mirrored_side_b():
    records = [_rec(1, "root", 0.0)]
    trace_diff = diff_traces([], records)
    assert len(trace_diff.only_b) == 1 and not trace_diff.only_a
    assert trace_diff.first_divergence.side == "b"
    html = render_comparison(
        "empty", "full", trace_diff, diff_metrics({}, {}), "mirror"
    )
    assert "trace divergence" in html


# -- disjoint metric namespaces --------------------------------------------


def test_disjoint_metric_namespaces_render_as_one_sided_rows():
    snap_a = {"client.sent": _counter(3), "client.retries": _counter(1)}
    snap_b = {"server.served": _counter(3), "server.shed": _counter(0)}
    metrics_diff = diff_metrics(snap_a, snap_b)
    assert not metrics_diff["identical"]
    assert metrics_diff["only_a"] == ["client.retries", "client.sent"]
    assert metrics_diff["only_b"] == ["server.served", "server.shed"]
    assert not metrics_diff["changed"]

    html = render_comparison(
        "a", "b", diff_traces([], []), metrics_diff, "disjoint"
    )
    assert "Metric deltas" in html
    for name in ("client.sent", "client.retries", "server.served",
                 "server.shed"):
        assert f"<code>{name}</code>" in html
    # Identical traces + disjoint metrics is still a non-identical verdict.
    assert "runs are structurally identical" not in html
    assert "0 trace divergence(s)" in html


def test_disjoint_namespaces_with_overlapping_counter_delta():
    snap_a = {"shared.count": _counter(2), "a.only": _counter(1)}
    snap_b = {"shared.count": _counter(5), "b.only": _counter(1)}
    metrics_diff = diff_metrics(snap_a, snap_b)
    assert metrics_diff["changed"]["shared.count"]["delta"] == 3
    html = render_comparison(
        "a", "b", diff_traces([], []), metrics_diff, "mixed"
    )
    assert "shared.count" in html and "1 metric change(s)" in html
