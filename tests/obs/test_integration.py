"""End-to-end observability: traced experiments stay byte-identical and
yield reconstructable causal adaptation chains."""

import json

import pytest

from repro.experiments.chaos import run_chaos
from repro.experiments.fig6 import fig6a_database
from repro.obs import (
    TraceRecorder,
    adaptation_chains,
    from_jsonl,
    to_jsonl,
)


@pytest.fixture(scope="module")
def traced_chaos():
    """One traced chaos run, shared by the assertions below."""
    recorder = TraceRecorder()
    _fig, payload = run_chaos(seed=0, recorder=recorder)
    return recorder, payload


def test_traced_chaos_outcome_byte_identical(traced_chaos):
    _recorder, traced_payload = traced_chaos
    _fig, untraced_payload = run_chaos(seed=0)
    assert json.dumps(traced_payload, sort_keys=True) == json.dumps(
        untraced_payload, sort_keys=True
    )


def test_traced_chaos_runs_are_deterministic(traced_chaos):
    recorder, _payload = traced_chaos
    again = TraceRecorder()
    run_chaos(seed=0, recorder=again)
    assert to_jsonl(recorder.records) == to_jsonl(again.records)
    assert recorder.metrics.snapshot() == again.metrics.snapshot()
    assert recorder.steps == again.steps


def test_chaos_causal_chain_reconstruction(traced_chaos):
    """At least one complete violation -> decision -> steering -> switch
    chain, with timestamps in simulated order and matching the payload."""
    recorder, payload = traced_chaos
    chains = adaptation_chains(recorder.records)
    assert chains, "no config.switch recorded"
    complete = []
    for records in chains:
        names = [r.name for r in records]
        if (
            "monitor.violation" in names
            and "sched.decision" in names
            and "steer.request" in names
            and names[-1] == "config.switch"
        ):
            complete.append(records)
    assert complete, f"no complete causal chain in {[[r.name for r in c] for c in chains]}"
    for records in complete:
        times = [r.t0 for r in records]
        assert times == sorted(times)
    # Switch timestamps agree with the runtime's own history.
    switch_times = sorted(r[-1].t0 for r in chains)
    payload_times = sorted(s["t"] for s in payload["switches"])
    assert switch_times == pytest.approx(payload_times)


def test_chaos_trace_survives_jsonl_round_trip(traced_chaos):
    recorder, _payload = traced_chaos
    back = from_jsonl(to_jsonl(recorder.records))
    chains = adaptation_chains(back)
    assert len(chains) == len(adaptation_chains(recorder.records))


def test_chaos_metrics_agree_with_payload(traced_chaos):
    recorder, payload = traced_chaos
    snap = recorder.metrics.snapshot()
    assert snap["steer.acks"]["value"] == len(payload["switches"])
    assert (
        snap["fault.dropped"]["value"]
        == payload["exchange"]["injector_dropped"]
    )
    assert snap["fault.injections"]["value"] == len(payload["injections"])


def test_traced_fig6a_byte_identical_and_spanned():
    recorder = TraceRecorder()
    db_traced, _dims, configs = fig6a_database(seed=0, recorder=recorder)
    db_plain, _dims, _configs = fig6a_database(seed=0)
    for config in configs:
        for point in db_plain.points_for(config):
            assert (
                db_traced.record_at(config, point).metrics
                == db_plain.record_at(config, point).metrics
            )
    measures = recorder.find("profile.measure")
    assert len(measures) == len(configs) * len(db_plain.points_for(configs[0]))
    assert all(r.t1 is not None for r in measures)
    assert recorder.metrics.counter("profile.runs").value == len(measures)
    # Every process span of a measurement run nests under its measure span.
    measure_sids = {r.sid for r in measures}
    proc_spans = [r for r in recorder.records if r.cat == "sim"]
    assert proc_spans
    roots = {r.parent for r in proc_spans if r.parent in measure_sids}
    assert roots  # ambient parenting grouped runs under measure spans
