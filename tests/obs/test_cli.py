"""Tests for `repro trace` / `repro metrics` (the observability CLI)."""

import json

import pytest

from repro.cli import main
from repro.obs import from_jsonl
from repro.obs.query import adaptation_chains


def test_trace_human_timeline(capsys):
    assert main(["trace", "chaos", "--limit", "5"]) == 0
    out = capsys.readouterr().out
    assert "== trace:" in out
    assert "== adaptation chains:" in out
    assert "monitor.violation@" in out
    assert "config.switch@" in out
    assert "== configuration dwell times ==" in out


def test_trace_json_reconstructs_chain(tmp_path):
    out_file = tmp_path / "chaos.jsonl"
    assert main(["trace", "chaos", "--json", "--out", str(out_file)]) == 0
    records = from_jsonl(out_file.read_text())
    assert records
    chains = adaptation_chains(records)
    assert chains
    names = [r.name for r in chains[0]]
    assert names[-1] == "config.switch"
    assert "monitor.violation" in names


def test_trace_chrome_format(tmp_path):
    out_file = tmp_path / "chaos.chrome.json"
    assert main(["trace", "chaos", "--chrome", "--out", str(out_file)]) == 0
    payload = json.loads(out_file.read_text())
    events = payload["traceEvents"]
    assert {e["ph"] for e in events} == {"X", "i", "M"}
    assert any(e["name"] == "config.switch" for e in events)


def test_metrics_human_and_json(tmp_path, capsys):
    assert main(["metrics", "chaos"]) == 0
    out = capsys.readouterr().out
    assert "steer.acks" in out
    assert "histogram" in out

    out_file = tmp_path / "metrics.json"
    assert main(["metrics", "chaos", "--json", "--out", str(out_file)]) == 0
    payload = json.loads(out_file.read_text())
    assert payload["experiment"] == "chaos"
    assert payload["metrics"]["adapt.decisions"]["kind"] == "counter"
    assert payload["summary"]["records"] > 0


def test_trace_unknown_experiment_errors():
    with pytest.raises(SystemExit):
        main(["trace", "nope"])


def test_metrics_csv_deterministic_and_well_formed(tmp_path):
    a = tmp_path / "a.csv"
    b = tmp_path / "b.csv"
    assert main(["metrics", "chaos", "--format", "csv", "--out", str(a)]) == 0
    assert main(["metrics", "chaos", "--format", "csv", "--out", str(b)]) == 0
    assert a.read_bytes() == b.read_bytes(), "CSV export must be byte-stable"
    lines = a.read_text().splitlines()
    assert lines[0] == "name,kind,field,t,value"
    # Deterministic column order implies sorted metric names.
    names = [line.split(",")[0] for line in lines[1:]]
    assert names == sorted(names)


def test_usage_cli_reports_resources(capsys):
    assert main(["usage", "chaos"]) == 0
    out = capsys.readouterr().out
    assert "== usage account:" in out
    assert "client.cpu" in out
    assert "configuration attribution marks" in out


def test_usage_cli_json(tmp_path):
    out_file = tmp_path / "usage.json"
    assert main(["usage", "chaos", "--json", "--out", str(out_file)]) == 0
    payload = json.loads(out_file.read_text())
    assert payload["experiment"] == "chaos"
    resources = payload["usage"]["resources"]
    assert any(r["served"] > 0 for r in resources.values())
    assert len(payload["usage"]["config_marks"]) >= 2


def test_diff_cli_same_seed_exits_zero(capsys):
    assert main(["diff", "chaos", "chaos"]) == 0
    out = capsys.readouterr().out
    assert "identical" in out.lower()


def test_diff_cli_different_seed_exits_nonzero(capsys):
    assert main(["diff", "chaos", "chaos", "--seed-b", "1"]) == 1
    out = capsys.readouterr().out
    assert "first divergence" in out.lower()


def test_report_cli_writes_selfcontained_html(tmp_path):
    out_file = tmp_path / "report.html"
    assert main(["report", "chaos", "--out", str(out_file)]) == 0
    html = out_file.read_text()
    assert html.startswith("<!DOCTYPE html>")
    assert "<script" not in html, "report must be self-contained, no JS"
    assert "Adaptation timeline" in html
    assert "Resource utilization" in html
    assert "config.switch" not in html or True  # layout detail, not contract


def test_report_cli_compare_mode(tmp_path):
    out_file = tmp_path / "cmp.html"
    assert (
        main(
            ["report", "chaos", "--compare", "chaos", "--seed-b", "1",
             "--out", str(out_file)]
        )
        == 0
    )
    html = out_file.read_text()
    assert "first divergence" in html.lower()


def test_report_cli_crowd_section(tmp_path):
    """The crowd run's report carries the per-class QoS + arrival panel."""
    out_file = tmp_path / "crowd.html"
    assert main(["report", "crowd", "--out", str(out_file)]) == 0
    html = out_file.read_text()
    assert "<script" not in html, "report must be self-contained, no JS"
    assert "<h2>Crowd</h2>" in html
    # One row per class, satisfaction bar plus arrival-rate timeline.
    assert "crowd.free.rate" in html
    assert "crowd.premium.rate" in html
    assert "QoS satisfaction" in html
