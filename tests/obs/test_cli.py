"""Tests for `repro trace` / `repro metrics` (the observability CLI)."""

import json

import pytest

from repro.cli import main
from repro.obs import from_jsonl
from repro.obs.query import adaptation_chains


def test_trace_human_timeline(capsys):
    assert main(["trace", "chaos", "--limit", "5"]) == 0
    out = capsys.readouterr().out
    assert "== trace:" in out
    assert "== adaptation chains:" in out
    assert "monitor.violation@" in out
    assert "config.switch@" in out
    assert "== configuration dwell times ==" in out


def test_trace_json_reconstructs_chain(tmp_path):
    out_file = tmp_path / "chaos.jsonl"
    assert main(["trace", "chaos", "--json", "--out", str(out_file)]) == 0
    records = from_jsonl(out_file.read_text())
    assert records
    chains = adaptation_chains(records)
    assert chains
    names = [r.name for r in chains[0]]
    assert names[-1] == "config.switch"
    assert "monitor.violation" in names


def test_trace_chrome_format(tmp_path):
    out_file = tmp_path / "chaos.chrome.json"
    assert main(["trace", "chaos", "--chrome", "--out", str(out_file)]) == 0
    payload = json.loads(out_file.read_text())
    events = payload["traceEvents"]
    assert {e["ph"] for e in events} == {"X", "i", "M"}
    assert any(e["name"] == "config.switch" for e in events)


def test_metrics_human_and_json(tmp_path, capsys):
    assert main(["metrics", "chaos"]) == 0
    out = capsys.readouterr().out
    assert "steer.acks" in out
    assert "histogram" in out

    out_file = tmp_path / "metrics.json"
    assert main(["metrics", "chaos", "--json", "--out", str(out_file)]) == 0
    payload = json.loads(out_file.read_text())
    assert payload["experiment"] == "chaos"
    assert payload["metrics"]["adapt.decisions"]["kind"] == "counter"
    assert payload["summary"]["records"] > 0


def test_trace_unknown_experiment_errors():
    with pytest.raises(SystemExit):
        main(["trace", "nope"])
