"""Tests for span recording: parenting, process lifecycle, no-op mode."""

import pytest

from repro.obs import ObsError, TraceRecorder
from repro.sim import Simulator


def test_disabled_mode_is_noop():
    """Without a bound recorder nothing observable changes: sim.obs stays
    None and every instrumentation guard short-circuits."""
    sim = Simulator()
    assert sim.obs is None

    def worker():
        yield sim.timeout(1.0)

    sim.process(worker(), name="w")
    sim.run(until=2.0)
    assert sim.obs is None  # nothing installed one behind our back


def test_bind_unbind_contract():
    sim = Simulator()
    rec = TraceRecorder()
    rec.bind(sim)
    assert sim.obs is rec
    with pytest.raises(ObsError):
        rec.bind(sim)  # double bind
    with pytest.raises(ObsError):
        TraceRecorder().bind(sim)  # second recorder on same sim
    rec.unbind()
    assert sim.obs is None
    assert sim.step_hook is None


def test_process_lifecycle_spans_and_creator_parenting():
    sim = Simulator()
    rec = TraceRecorder().bind(sim)

    def child():
        rec.instant("child.tick")
        yield sim.timeout(1.0)

    def parent():
        yield sim.timeout(0.5)
        sim.process(child(), name="kid")
        yield sim.timeout(2.0)

    sim.process(parent(), name="dad")
    sim.run(until=5.0)
    rec.finish()

    dad = rec.find("proc:dad")[0]
    kid = rec.find("proc:kid")[0]
    tick = rec.find("child.tick")[0]
    assert dad.parent is None
    assert kid.parent == dad.sid  # spawned from inside dad
    assert tick.parent == kid.sid  # recorded while kid was active
    assert dad.t0 == 0.0 and dad.t1 == pytest.approx(2.5)
    assert kid.t0 == pytest.approx(0.5) and kid.t1 == pytest.approx(1.5)
    assert tick.t0 == pytest.approx(0.5)
    assert dad.attrs["ok"] is True


def test_interleaved_processes_nest_independently():
    """Spans recorded from interleaved processes parent under their own
    process span, not whichever process happened to run last."""
    sim = Simulator()
    rec = TraceRecorder().bind(sim)

    def ticker(name, period):
        for _ in range(3):
            yield sim.timeout(period)
            rec.instant(f"tick.{name}")

    sim.process(ticker("a", 0.3), name="proc-a")
    sim.process(ticker("b", 0.4), name="proc-b")
    sim.run(until=2.0)
    rec.finish()

    span_a = rec.find("proc:proc-a")[0]
    span_b = rec.find("proc:proc-b")[0]
    assert all(r.parent == span_a.sid for r in rec.find("tick.a"))
    assert all(r.parent == span_b.sid for r in rec.find("tick.b"))
    assert [r.proc for r in rec.find("tick.a")] == ["proc-a"] * 3


def test_explicit_parent_beats_active_process():
    sim = Simulator()
    rec = TraceRecorder().bind(sim)
    cause = rec.instant("cause")

    def worker():
        yield sim.timeout(1.0)
        rec.instant("effect", parent=cause)

    sim.process(worker(), name="w")
    sim.run(until=2.0)
    assert rec.find("effect")[0].parent == cause


def test_ambient_parent_stack():
    rec = TraceRecorder()
    with rec.span("outer") as outer:
        inner = rec.instant("inner")
    after = rec.instant("after")
    assert rec.find("inner")[0].parent == outer
    assert rec.find("after")[0].parent is None
    assert after != inner


def test_span_end_errors_and_finish():
    rec = TraceRecorder()
    sid = rec.begin("work")
    with pytest.raises(ObsError):
        rec.end(999)
    rec.end(sid)
    with pytest.raises(ObsError):
        rec.end(sid)  # double close
    open_sid = rec.begin("dangling")
    rec.finish()
    dangling = rec.find("dangling")[0]
    assert dangling.sid == open_sid
    assert dangling.t1 is not None
    assert dangling.attrs["unfinished"] is True


def test_monotonic_ids_and_unbound_clock():
    rec = TraceRecorder()
    a = rec.instant("a")
    b = rec.instant("b")
    assert (a, b) == (1, 2)
    assert rec.find("a")[0].t0 == 0.0  # unbound clock reads 0.0


def test_recorder_chains_existing_step_hook():
    sim = Simulator()
    seen = []
    sim.step_hook = lambda t, prio, seq, event: seen.append(seq)
    rec = TraceRecorder().bind(sim)

    def worker():
        yield sim.timeout(1.0)

    sim.process(worker(), name="w")
    sim.run(until=2.0)
    assert seen  # the original hook still fires
    assert rec.steps == len(seen)
