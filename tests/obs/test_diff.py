"""Trace diffing: structural keys, determinism, and divergence localization."""

import json

import pytest

from repro.experiments.chaos import run_chaos
from repro.obs import (
    TraceRecorder,
    diff_metrics,
    diff_traces,
    structural_keys,
    to_chrome,
)
from repro.obs.diff import format_key
from repro.obs.record import SpanRecord


def _trace(seed):
    recorder = TraceRecorder()
    run_chaos(seed=seed, recorder=recorder)
    return recorder


@pytest.fixture(scope="module")
def chaos_pair():
    return _trace(0), _trace(0)


@pytest.fixture(scope="module")
def chaos_divergent():
    return _trace(0), _trace(1)


# -- structural keys -------------------------------------------------------


def _rec(sid, name, t0, parent=None):
    return SpanRecord(
        sid=sid, parent=parent, name=name, cat="test", kind="span", t0=t0
    )


def test_structural_keys_ordinal_same_named_siblings():
    records = [
        _rec(1, "root", 0.0),
        _rec(2, "work", 1.0, parent=1),
        _rec(3, "work", 2.0, parent=1),
        _rec(4, "other", 3.0, parent=1),
    ]
    keys = structural_keys(records)
    assert keys[2] != keys[3], "same-named siblings must get distinct ordinals"
    assert format_key(keys[2]) == "root[0]/work[0]"
    assert format_key(keys[3]) == "root[0]/work[1]"
    assert format_key(keys[4]) == "root[0]/other[0]"


def test_structural_keys_ignore_sids_and_timestamps():
    a = [_rec(1, "root", 0.0), _rec(2, "work", 1.0, parent=1)]
    # Same structure, different span ids and times.
    b = [_rec(10, "root", 5.0), _rec(42, "work", 9.0, parent=10)]
    keys_a = structural_keys(a)
    keys_b = structural_keys(b)
    assert keys_a[2] == keys_b[42]
    assert keys_a[1] == keys_b[10]


# -- whole-trace diff ------------------------------------------------------


def test_same_seed_chaos_diff_is_clean(chaos_pair):
    a, b = chaos_pair
    result = diff_traces(a.records, b.records)
    assert result.identical, (
        f"same-seed runs diverged: {result.divergences} divergence(s), "
        f"first={result.first_divergence}"
    )
    assert result.first_divergence is None
    assert result.matched > 0

    mdiff = diff_metrics(a.metrics.snapshot(), b.metrics.snapshot())
    assert mdiff["identical"]


def test_different_seed_diff_localizes_first_divergence(chaos_divergent):
    a, b = chaos_divergent
    result = diff_traces(a.records, b.records)
    assert not result.identical
    first = result.first_divergence
    assert first is not None
    assert first.kind in ("changed", "only_a", "only_b")
    assert first.causal_chain, "first divergence must carry causal context"
    # The divergence report is JSON-stable.
    payload = result.to_dict()
    assert json.dumps(payload, sort_keys=True)
    assert payload["first_divergence"]["key"]

    mdiff = diff_metrics(a.metrics.snapshot(), b.metrics.snapshot())
    assert not mdiff["identical"]
    assert mdiff["changed"], "different seeds must move at least one metric"


def test_diff_is_deterministic(chaos_divergent):
    a, b = chaos_divergent
    one = diff_traces(a.records, b.records).to_dict()
    two = diff_traces(a.records, b.records).to_dict()
    assert json.dumps(one, sort_keys=True) == json.dumps(two, sort_keys=True)


def test_diff_ignores_volatile_attrs(chaos_pair):
    a, _ = chaos_pair
    # A record differing only in `virtual_duration` must still match.
    clones = [
        SpanRecord(
            sid=r.sid, parent=r.parent, name=r.name, cat=r.cat, kind=r.kind,
            t0=r.t0, t1=r.t1, proc=r.proc,
            attrs={
                **r.attrs,
                **(
                    {"virtual_duration": 123.456}
                    if "virtual_duration" in r.attrs
                    else {}
                ),
            },
        )
        for r in a.records
    ]
    result = diff_traces(a.records, clones)
    assert result.identical


# -- metrics diff ----------------------------------------------------------


def test_diff_metrics_reports_counter_delta():
    snap_a = {"x": {"kind": "counter", "value": 3.0}}
    snap_b = {"x": {"kind": "counter", "value": 5.0}}
    result = diff_metrics(snap_a, snap_b)
    assert not result["identical"]
    assert result["changed"]["x"]["delta"] == pytest.approx(2.0)


def test_diff_metrics_only_in_one_side():
    snap_a = {"x": {"kind": "counter", "value": 1.0}}
    snap_b = {}
    result = diff_metrics(snap_a, snap_b)
    assert result["only_a"] == ["x"]
    assert not result["identical"]


# -- golden chrome trace ---------------------------------------------------


def test_fig5_chrome_trace_matches_golden(request):
    """Chrome export of the small seeded fig5 grid is byte-stable.

    Regenerate after an intentional trace-format change with::

        PYTHONPATH=src python - <<'PY'
        import json
        from repro.experiments.fig5 import fig5_database
        from repro.obs import TraceRecorder, to_chrome
        r = TraceRecorder()
        fig5_database(shares=(0.4, 0.9), fovea_sizes=(80, 320),
                      n_images=1, seed=0, recorder=r)
        open('tests/obs/golden/fig5_chrome.json', 'w').write(
            json.dumps(to_chrome(r.records), indent=1, sort_keys=True) + '\\n')
        PY
    """
    from repro.experiments.fig5 import fig5_database

    recorder = TraceRecorder()
    fig5_database(
        shares=(0.4, 0.9), fovea_sizes=(80, 320), n_images=1, seed=0,
        recorder=recorder,
    )
    rendered = json.dumps(to_chrome(recorder.records), indent=1, sort_keys=True) + "\n"
    golden = request.path.parent / "golden" / "fig5_chrome.json"
    assert rendered == golden.read_text(), (
        "Chrome trace export drifted from tests/obs/golden/fig5_chrome.json "
        "(see this test's docstring to regenerate after intentional changes)"
    )
