"""Tests for the deterministic metrics registry."""

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    TimeSeries,
)


def test_counter_monotonic():
    c = Counter("x")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(MetricError):
        c.inc(-1)


def test_gauge_last_write_wins():
    g = Gauge("x")
    assert g.value is None
    g.set(3)
    g.set(7)
    assert g.value == 7.0
    assert g.updates == 2


def test_histogram_bucket_edges_exact():
    """Edge semantics: v <= edge lands at that edge's bucket (bisect_left)."""
    h = Histogram("lat", edges=(1.0, 2.0, 5.0))
    assert len(h.counts) == 4  # len(edges) + 1 (overflow)
    for v, bucket in [
        (0.5, 0),   # below first edge
        (1.0, 0),   # exactly on an edge counts toward that bucket
        (1.0001, 1),
        (2.0, 1),
        (5.0, 2),
        (5.0001, 3),  # overflow
        (100.0, 3),
    ]:
        before = list(h.counts)
        h.observe(v)
        changed = [i for i in range(4) if h.counts[i] != before[i]]
        assert changed == [bucket], f"value {v} landed in {changed}, want {bucket}"
    assert h.count == 7
    assert h.vmin == 0.5
    assert h.vmax == 100.0
    assert h.mean == pytest.approx(sum((0.5, 1.0, 1.0001, 2.0, 5.0, 5.0001, 100.0)) / 7)


def test_histogram_validation():
    with pytest.raises(MetricError):
        Histogram("bad", edges=())
    with pytest.raises(MetricError):
        Histogram("bad", edges=(1.0, 1.0))
    with pytest.raises(MetricError):
        Histogram("bad", edges=(2.0, 1.0))


def test_registry_get_or_create_idempotent():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.histogram("h", edges=(1, 2)) is reg.histogram("h")
    assert reg.series("s") is reg.series("s")
    assert len(reg) == 3
    assert "a" in reg and "ghost" not in reg


def test_registry_type_conflicts():
    reg = MetricsRegistry()
    reg.counter("a")
    with pytest.raises(MetricError):
        reg.gauge("a")
    with pytest.raises(MetricError):
        reg.histogram("a", edges=(1.0,))
    reg.histogram("h", edges=(1.0, 2.0))
    with pytest.raises(MetricError):
        reg.histogram("h", edges=(1.0, 3.0))  # shape drift
    with pytest.raises(MetricError):
        reg.histogram("new")  # must pass edges on creation


def test_snapshot_sorted_and_json_stable():
    reg = MetricsRegistry()
    reg.counter("zz").inc()
    reg.gauge("aa").set(1)
    ts = TimeSeries("t")
    ts.record(0.5, 2.0)
    snap = reg.snapshot()
    assert list(snap) == ["aa", "zz"]
    assert snap["zz"] == {"kind": "counter", "value": 1.0}
    assert ts.to_dict() == {"kind": "series", "samples": [[0.5, 2.0]]}
