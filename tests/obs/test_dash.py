"""Fleet dashboard: cell builders, heat rows, divergence links, stability."""

import json

from repro.obs import (
    InteractiveContext,
    dashboard_cell,
    dashboard_cell_from_context,
    load_store_cells,
    render_dashboard,
)
from repro.obs.record import SpanRecord


def _rec(sid, name, t0, parent=None, **attrs):
    return SpanRecord(
        sid=sid, parent=parent, name=name, cat="test", kind="span", t0=t0,
        attrs=attrs,
    )


def _payload_cell(label, group, qos, violations=0, total_time=10.0):
    return dashboard_cell(
        label,
        group=group,
        payload={
            "total_time": total_time,
            "violations": violations,
            "qos": qos,
        },
    )


_FLEET = [
    _payload_cell("sweep cpu=0.4", "sweep", {"response_time": 0.8}, 0),
    _payload_cell("sweep cpu=0.9", "sweep", {"response_time": 0.3}, 0),
    _payload_cell("chaos seed=0", "chaos", {"transmit_time": 2.0}, 3),
    _payload_cell("chaos seed=1", "chaos", {"transmit_time": 2.5}, 7),
]


def test_dashboard_aggregates_four_plus_cells_with_heat_rows():
    html = render_dashboard(_FLEET)
    assert html.startswith("<!DOCTYPE html>")
    assert "<script" not in html  # no-JS contract
    assert "over 4 cell(s)" in html
    for i in range(4):
        assert f'id="cell-{i}"' in html
    # Union of disjoint qos namespaces appears as one heat row each.
    assert "qos: response_time" in html and "qos: transmit_time" in html
    assert "constraint violations" in html
    # Worst violation count (7) hits the top of the deterministic ramp.
    assert "#ef4444" in html


def test_dashboard_is_byte_stable_over_same_cells():
    assert render_dashboard(_FLEET) == render_dashboard(_FLEET)


def test_dashboard_handles_empty_fleet():
    html = render_dashboard([])
    assert "over 0 cell(s)" in html
    assert "Run-pair divergences" not in html


def test_divergence_links_pair_same_group_traced_cells():
    base = [_rec(1, "root", 0.0), _rec(2, "work", 1.0, parent=1)]
    twin = [_rec(7, "root", 0.5), _rec(9, "work", 1.5, parent=7)]
    other = [_rec(1, "root", 0.0), _rec(2, "rest", 1.0, parent=1)]
    html = render_dashboard([
        dashboard_cell("run a", group="g", records=base),
        dashboard_cell("run b", group="g", records=twin),
        dashboard_cell("run c", group="g", records=other),
        dashboard_cell("lone", group="other", records=base),
    ])
    assert "Run-pair divergences" in html
    # a/b match structurally (sids and times are free to differ) ...
    assert "identical</span> (2 spans matched)" in html
    # ... b/c diverge on the renamed child span.
    assert "diverges" in html
    # Groups don't cross: 2 pairs within "g", none touching "lone".
    assert html.count("<tr><td>run") == 2


def test_load_store_cells_reads_sweep_results(tmp_path):
    def entry(key, kind, config, point, seed, metrics):
        payload = {"config": config, "point": point}
        return {
            "key": key,
            "spec": {"kind": kind, "payload": payload, "seed": seed},
            "value": {"config": config, "point": point, "metrics": metrics},
            "wall": 0.1,
        }

    sub = tmp_path / "ab"
    sub.mkdir()
    (sub / "ab01.json").write_text(json.dumps(entry(
        "ab01", "repro.exec.profile_jobs:measure_cell",
        {"dR": 80}, {"client.cpu": 0.4}, 0, {"response_time": 0.9},
    )))
    (sub / "ab02.json").write_text(json.dumps(entry(
        "ab02", "repro.exec.profile_jobs:measure_cell",
        {"dR": 160}, {"client.cpu": 0.9}, 0, {"response_time": 0.2},
    )))
    (sub / "junk.json").write_text("{not json")  # skipped, not fatal

    cells = load_store_cells(tmp_path)
    assert len(cells) == 2
    assert [c["label"] for c in cells] == [
        "measure_cell dR=80 client.cpu=0.4 seed=0",
        "measure_cell dR=160 client.cpu=0.9 seed=0",
    ]
    assert all(c["group"] == "measure_cell" for c in cells)

    html = render_dashboard(cells)
    assert "qos: response_time" in html
    assert "metrics.response_time" in html  # per-cell Result table


def test_cell_from_context_labels_scenario_and_embeds_live_state():
    ctx = InteractiveContext("fig5", seed=0)
    ctx.run_until(5.0)
    cell = dashboard_cell_from_context(ctx)
    assert cell["label"].startswith("fig5@seed=0 t=")
    assert cell["group"] == "fig5" and cell["records"]
    assert cell["inspect"]["scenario"] == "fig5"
    html = render_dashboard([cell])
    assert "Live state" in html and "Adaptation timeline" in html
