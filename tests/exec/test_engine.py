"""SweepEngine: cache behaviour, invalidation, metrics, sweep_cells."""

import pytest

from repro.exec import (
    JobSpec,
    ResultStore,
    SweepEngine,
    SweepError,
    default_engine,
    set_default_engine,
    sweep_cells,
)


def _specs(n: int = 4, seed: int = 0):
    return [
        JobSpec(
            kind="tests.exec._jobs:add",
            payload={"a": i, "b": 10},
            seed=seed,
            key=f"{i:03d}",
        )
        for i in range(n)
    ]


def test_uncached_engine_runs_everything(tmp_path):
    engine = SweepEngine(jobs=1)
    report = engine.run(_specs())
    assert report.stats["ran"] == 4
    assert report.stats["cached"] == 0
    assert report.values() == [10, 11, 12, 13]


def test_cache_miss_then_hit(tmp_path):
    store = ResultStore(tmp_path)
    engine = SweepEngine(jobs=1, store=store, source="fp-1")
    first = engine.run(_specs())
    assert first.stats["ran"] == 4 and first.stats["hit_rate"] == 0.0

    second = engine.run(_specs())
    assert second.stats["ran"] == 0
    assert second.stats["cached"] == 4
    assert second.stats["hit_rate"] == 1.0
    assert second.stats["wall_saved"] >= 0.0
    assert second.values() == first.values()
    assert all(r.cached for r in second.outcomes)


def test_source_change_invalidates(tmp_path):
    store = ResultStore(tmp_path)
    SweepEngine(jobs=1, store=store, source="fp-old").run(_specs())
    engine = SweepEngine(jobs=1, store=store, source="fp-new")
    report = engine.run(_specs())
    assert report.stats["ran"] == 4  # nothing served from the old source
    assert report.stats["cached"] == 0


def test_seed_and_payload_changes_miss(tmp_path):
    store = ResultStore(tmp_path)
    engine = SweepEngine(jobs=1, store=store, source="fp")
    engine.run(_specs(seed=0))
    assert engine.run(_specs(seed=1)).stats["ran"] == 4
    other = [
        JobSpec(
            kind="tests.exec._jobs:add", payload={"a": i, "b": 11},
            seed=0, key=f"{i:03d}",
        )
        for i in range(4)
    ]
    assert engine.run(other).stats["ran"] == 4


def test_failures_not_cached(tmp_path):
    store = ResultStore(tmp_path)
    engine = SweepEngine(jobs=1, store=store, source="fp")
    bad = [JobSpec(kind="tests.exec._jobs:boom", payload={}, key="b")]
    report = engine.run(bad, strict=False)
    assert report.failures and len(store) == 0
    # A later run re-executes rather than serving the failure.
    assert engine.run(bad, strict=False).stats["ran"] == 1


def test_strict_failure_raises_with_summary():
    engine = SweepEngine(jobs=1)
    specs = [
        JobSpec(
            kind="tests.exec._jobs:boom", payload={"message": "kaboom"}, key="x"
        )
    ]
    with pytest.raises(SweepError, match="kaboom"):
        engine.run(specs)
    report = engine.run(specs, strict=False)
    assert not report.outcomes[0].ok
    with pytest.raises(SweepError):
        report.value("x")


def test_duplicate_keys_rejected():
    engine = SweepEngine(jobs=1)
    with pytest.raises(SweepError, match="duplicate"):
        engine.run(
            [
                JobSpec(kind="tests.exec._jobs:echo", key="k"),
                JobSpec(kind="tests.exec._jobs:echo", key="k"),
            ]
        )


def test_metrics_instrumented(tmp_path):
    store = ResultStore(tmp_path)
    engine = SweepEngine(jobs=1, store=store, source="fp")
    engine.run(_specs())
    engine.run(_specs())
    m = engine.metrics
    assert m.counter("exec.jobs.run").value == 4
    assert m.counter("exec.jobs.cached").value == 4
    assert m.counter("exec.jobs.failed").value == 0
    assert m.gauge("exec.workers").value == 1


def test_sweep_cells_returns_payload_order():
    values = sweep_cells(
        "tests.exec._jobs:add",
        [{"a": i, "b": 100} for i in (5, 3, 9)],
        seed=1,
    )
    assert values == [106, 104, 110]


def test_sweep_cells_uses_default_engine(tmp_path):
    store = ResultStore(tmp_path)
    engine = SweepEngine(jobs=1, store=store, source="fp")
    previous = set_default_engine(engine)
    try:
        assert default_engine() is engine
        sweep_cells("tests.exec._jobs:add", [{"a": 1, "b": 2}])
        assert len(store) == 1
        sweep_cells("tests.exec._jobs:add", [{"a": 1, "b": 2}])
        assert engine.metrics.counter("exec.jobs.cached").value == 1
    finally:
        set_default_engine(previous)
    assert default_engine() is not engine
