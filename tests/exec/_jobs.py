"""Job functions for the repro.exec tests.

They live in an importable module (not inside a test function) because
spawned worker processes must be able to ``import tests.exec._jobs`` and
resolve them by dotted path.
"""

from __future__ import annotations

import os
import time
from pathlib import Path


def echo(payload: dict, seed: int):
    """Return the inputs verbatim."""
    return {"payload": dict(payload), "seed": seed}


def add(payload: dict, seed: int):
    """Pure arithmetic on the payload."""
    return payload["a"] + payload["b"] + seed


def pid(payload: dict, seed: int):
    """The executing process id (distinguishes workers from the parent)."""
    return os.getpid()


def slow(payload: dict, seed: int):
    """Sleep ``duration`` wall seconds, then return ``value``."""
    time.sleep(payload["duration"])
    return payload.get("value")


def boom(payload: dict, seed: int):
    """Raise — the deterministic in-job failure case."""
    raise ValueError(payload.get("message", "boom"))


def crash(payload: dict, seed: int):
    """Kill the executing process without reporting a result."""
    os._exit(payload.get("code", 13))


def crash_once(payload: dict, seed: int):
    """Crash on the first attempt (marker file absent), succeed after.

    ``payload["marker"]`` is a path unique to the test; its existence
    records that the crash already happened.
    """
    marker = Path(payload["marker"])
    if not marker.exists():
        marker.write_text("crashed")
        os._exit(13)
    return "recovered"
