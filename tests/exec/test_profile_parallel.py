"""Parallel/cached profiling is byte-identical to the serial loop."""

import pytest

from repro.apps import make_toy_app
from repro.exec import AppSpec, JobSpecError, ResultStore, SweepEngine
from repro.profiling import (
    PerformanceDatabase,
    ProfilingDriver,
    Record,
    ResourceDimension,
    ResourcePoint,
    autoprofile,
)
from repro.tunable import Configuration

DIMS = lambda: [ResourceDimension("node.cpu", (0.5, 1.0), lo=0.01, hi=1.0)]  # noqa: E731
TOY_SPEC = AppSpec("repro.apps:make_toy_app")


def _driver(**kwargs):
    app = make_toy_app()
    return ProfilingDriver(app, DIMS(), seed=3, app_spec=TOY_SPEC, **kwargs)


def _db_bytes(db: PerformanceDatabase, tmp_path, name: str) -> bytes:
    path = tmp_path / name
    db.save(path)
    return path.read_bytes()


def test_record_round_trip():
    rec = Record(
        config=Configuration({"scale": 2.0}),
        point=ResourcePoint({"node.cpu": 0.5}),
        metrics={"elapsed": 12.5},
        meta={"seed": 7, "virtual_duration": 12.5},
    )
    clone = Record.from_dict(rec.to_dict())
    assert clone == rec


def test_database_json_round_trip(tmp_path):
    db = _driver().profile()
    path = tmp_path / "db.json"
    db.save(path)
    loaded = PerformanceDatabase.load(path)
    assert loaded.to_dict() == db.to_dict()
    # Round-tripped database serializes to the same bytes.
    path2 = tmp_path / "db2.json"
    loaded.save(path2)
    assert path.read_bytes() == path2.read_bytes()


def test_engine_profile_byte_identical_to_serial(tmp_path):
    serial = _driver().profile()
    engine = SweepEngine(jobs=2)
    parallel = _driver().profile(engine=engine)
    assert _db_bytes(serial, tmp_path, "serial.json") == _db_bytes(
        parallel, tmp_path, "parallel.json"
    )


def test_cached_profile_byte_identical_and_fully_served(tmp_path):
    store = ResultStore(tmp_path / "cache")
    engine = SweepEngine(jobs=2, store=store, source="pinned-fp")
    first = _driver().profile(engine=engine)

    engine2 = SweepEngine(jobs=1, store=store, source="pinned-fp")
    second = _driver().profile(engine=engine2)
    assert _db_bytes(first, tmp_path, "a.json") == _db_bytes(
        second, tmp_path, "b.json"
    )
    assert engine2.metrics.counter("exec.jobs.cached").value == len(second)
    assert engine2.metrics.counter("exec.jobs.run").value == 0


def test_engine_profile_adaptive_matches_serial(tmp_path):
    serial = _driver().profile_adaptive(rounds=1, per_round=2)
    engine = SweepEngine(jobs=2)
    parallel = _driver().profile_adaptive(rounds=1, per_round=2, engine=engine)
    assert _db_bytes(serial, tmp_path, "s.json") == _db_bytes(
        parallel, tmp_path, "p.json"
    )


def test_autoprofile_engine_path_matches_serial(tmp_path):
    app = make_toy_app()
    serial = autoprofile(app, DIMS(), adaptive_rounds=1, per_round=2, seed=5)
    app2 = make_toy_app()
    engine = SweepEngine(jobs=2)
    parallel = autoprofile(
        app2, DIMS(), adaptive_rounds=1, per_round=2, seed=5,
        app_spec=TOY_SPEC, engine=engine,
    )
    assert _db_bytes(serial.database, tmp_path, "s.json") == _db_bytes(
        parallel.database, tmp_path, "p.json"
    )
    assert serial.samples_total == parallel.samples_total
    assert serial.configurations_kept == parallel.configurations_kept


def test_engine_without_app_spec_rejected():
    app = make_toy_app()
    driver = ProfilingDriver(app, DIMS(), seed=0)  # no app_spec
    with pytest.raises(JobSpecError, match="AppSpec"):
        driver.profile(engine=SweepEngine(jobs=1))
