"""ResultStore: round trips, stale invalidation, corruption, atomicity."""

import json

from repro.exec import ResultStore


def _key(i: int = 0) -> str:
    return f"{i:02x}" + "ab" * 19  # 40 hex chars, distinct leading shard


def test_put_get_round_trip(tmp_path):
    store = ResultStore(tmp_path / "cache")
    key = _key()
    store.put(key, "src-1", {"kind": "k"}, {"answer": 42}, wall=1.5)
    entry = store.get(key, "src-1")
    assert entry["value"] == {"answer": 42}
    assert entry["wall"] == 1.5
    assert entry["spec"] == {"kind": "k"}
    assert store.hits == 1 and store.misses == 0
    assert key in store and len(store) == 1


def test_missing_key_is_a_miss(tmp_path):
    store = ResultStore(tmp_path)
    assert store.get(_key(), "src") is None
    assert store.misses == 1 and store.hits == 0


def test_stale_source_discarded_on_read(tmp_path):
    store = ResultStore(tmp_path)
    key = _key()
    store.put(key, "old-source", {}, "value")
    assert store.get(key, "new-source") is None
    assert store.stale == 1 and store.misses == 1
    # The entry was deleted on sight, not merely skipped.
    assert key not in store
    assert store.get(key, "old-source") is None


def test_corrupt_entry_discarded(tmp_path):
    store = ResultStore(tmp_path)
    key = _key()
    store.put(key, "src", {}, "value")
    path = tmp_path / key[:2] / f"{key}.json"
    path.write_text("{not json")
    assert store.get(key, "src") is None
    assert not path.exists()


def test_put_is_atomic_no_temp_litter(tmp_path):
    store = ResultStore(tmp_path)
    for i in range(4):
        store.put(_key(i), "src", {}, i)
    leftovers = [p for p in tmp_path.rglob("*") if ".tmp" in p.name]
    assert leftovers == []
    assert len(store) == 4
    assert store.keys() == sorted(_key(i) for i in range(4))


def test_put_overwrites(tmp_path):
    store = ResultStore(tmp_path)
    key = _key()
    store.put(key, "src", {}, "first")
    store.put(key, "src", {}, "second")
    assert store.get(key, "src")["value"] == "second"
    assert len(store) == 1


def test_prune_stale(tmp_path):
    store = ResultStore(tmp_path)
    store.put(_key(0), "current", {}, 0)
    store.put(_key(1), "stale", {}, 1)
    store.put(_key(2), "stale", {}, 2)
    (tmp_path / _key(3)[:2]).mkdir(exist_ok=True)
    (tmp_path / _key(3)[:2] / f"{_key(3)}.json").write_text("{broken")
    assert store.prune_stale("current") == 3
    assert store.keys() == [_key(0)]


def test_entry_file_is_sorted_json(tmp_path):
    """Entries are diffable artifacts: stable key order on disk."""
    store = ResultStore(tmp_path)
    key = _key()
    store.put(key, "src", {"z": 1, "a": 2}, {"b": 1, "a": 2})
    raw = (tmp_path / key[:2] / f"{key}.json").read_text()
    assert raw == json.dumps(json.loads(raw), sort_keys=True, indent=1)
