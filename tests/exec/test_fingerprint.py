"""Source fingerprinting: stability, sensitivity, memoization."""

from repro.exec import clear_fingerprint_cache, source_fingerprint


def _tree(tmp_path, name="pkg"):
    root = tmp_path / name
    root.mkdir()
    (root / "a.py").write_text("A = 1\n")
    (root / "b.py").write_text("B = 2\n")
    return root


def test_fingerprint_stable_for_unchanged_tree(tmp_path):
    root = _tree(tmp_path)
    fp1 = source_fingerprint([root])
    clear_fingerprint_cache()
    fp2 = source_fingerprint([root])
    assert fp1 == fp2
    assert len(fp1) == 16


def test_fingerprint_changes_when_source_changes(tmp_path):
    root = _tree(tmp_path)
    before = source_fingerprint([root])
    (root / "a.py").write_text("A = 999\n")
    clear_fingerprint_cache()
    assert source_fingerprint([root]) != before


def test_fingerprint_changes_when_file_added(tmp_path):
    root = _tree(tmp_path)
    before = source_fingerprint([root])
    (root / "c.py").write_text("C = 3\n")
    clear_fingerprint_cache()
    assert source_fingerprint([root]) != before


def test_fingerprint_memoized_until_cleared(tmp_path):
    root = _tree(tmp_path)
    before = source_fingerprint([root])
    (root / "a.py").write_text("A = 42\n")
    # Same process, no cache clear: memo still served.
    assert source_fingerprint([root]) == before
    clear_fingerprint_cache()
    assert source_fingerprint([root]) != before


def test_default_fingerprint_covers_live_package():
    clear_fingerprint_cache()
    fp = source_fingerprint()
    assert len(fp) == 16
    clear_fingerprint_cache()
    assert source_fingerprint() == fp
