"""CLI surface of the sweep engine: `repro sweep` and `--jobs/--no-cache`."""

import json

import pytest

from repro.cli import main
from repro.exec.engine import _default  # noqa: F401  (import check only)


def test_sweep_toy_serial_cached(tmp_path, capsys):
    cache = tmp_path / "cache"
    out = tmp_path / "toy.json"
    assert main(
        ["sweep", "toy", "--cache-dir", str(cache), "--out", str(out)]
    ) == 0
    text = capsys.readouterr().out
    assert "== sweep toy:" in text
    assert "12 run, 0 cached" in text
    db = json.loads(out.read_text())
    assert len(db["records"]) == 12  # 3 configs x 4 cpu levels

    # Second invocation is fully cache-served and byte-identical.
    out2 = tmp_path / "toy2.json"
    assert main(
        ["sweep", "toy", "--cache-dir", str(cache), "--out", str(out2)]
    ) == 0
    text2 = capsys.readouterr().out
    assert "0 run, 12 cached" in text2
    assert out.read_bytes() == out2.read_bytes()


def test_sweep_no_cache_never_writes(tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(
        ["sweep", "toy", "--cache-dir", str(cache), "--no-cache"]
    ) == 0
    assert "12 run, 0 cached" in capsys.readouterr().out
    assert not any(cache.rglob("*.json")) if cache.exists() else True


def test_sweep_rejects_bad_jobs(tmp_path):
    with pytest.raises(SystemExit):
        main(["sweep", "toy", "--jobs", "0"])
    with pytest.raises(SystemExit):
        main(["sweep", "nosuchapp"])


def test_figures_accept_cache_flags_and_restore_default(tmp_path, capsys):
    from repro.exec import default_engine
    from repro.exec.engine import SweepEngine

    before = default_engine()
    assert main(
        ["ablation-a4", "--cache-dir", str(tmp_path / "cache"), "--no-plot"]
    ) == 0
    out = capsys.readouterr().out
    assert "ablation-a4" in out
    assert "sweep engine:" in out
    after = default_engine()
    # The CLI-scoped engine was uninstalled on exit.
    assert isinstance(after, SweepEngine)
    assert after is before
