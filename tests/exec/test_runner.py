"""ParallelRunner: deterministic merge, crash recovery, timeouts."""

import pytest

from repro.exec import JobSpec, ParallelRunner, RunnerError, run_job
from repro.exec.engine import SweepEngine


def _spec(key: str, kind: str = "tests.exec._jobs:echo", **payload) -> JobSpec:
    return JobSpec(kind=kind, payload=payload, seed=0, key=key)


def test_inline_run_job():
    result = run_job(_spec("k", kind="tests.exec._jobs:add", a=2, b=3))
    assert result.ok and result.value == 5
    assert result.wall >= 0.0


def test_inline_run_job_exception_captured():
    result = run_job(_spec("k", kind="tests.exec._jobs:boom", message="nope"))
    assert not result.ok
    assert "ValueError: nope" in result.error


def test_serial_runner_matches_inline():
    runner = ParallelRunner(jobs=1)
    specs = [_spec(f"{i:02d}", kind="tests.exec._jobs:add", a=i, b=1) for i in range(5)]
    results = runner.run(specs)
    assert sorted(results) == [s.key for s in specs]
    assert [results[s.key].value for s in specs] == [1, 2, 3, 4, 5]


def test_duplicate_keys_rejected():
    runner = ParallelRunner(jobs=1)
    with pytest.raises(RunnerError, match="duplicate"):
        runner.run([_spec("same"), _spec("same")])


def test_invalid_parameters_rejected():
    with pytest.raises(RunnerError):
        ParallelRunner(jobs=-1)
    with pytest.raises(RunnerError):
        ParallelRunner(timeout=0)
    with pytest.raises(RunnerError):
        ParallelRunner(retries=-1)


def test_parallel_runs_in_worker_processes():
    import os

    runner = ParallelRunner(jobs=2)
    results = runner.run(
        [_spec(f"{i}", kind="tests.exec._jobs:pid") for i in range(4)]
    )
    pids = {r.value for r in results.values()}
    assert os.getpid() not in pids  # really executed in spawned workers


def test_adversarial_completion_order_still_merges_by_key():
    """First-keyed jobs sleep longest, so completion order inverts key
    order — the merged values must still follow key order exactly."""
    durations = [0.6, 0.4, 0.2, 0.0]
    specs = [
        _spec(
            f"{i:02d}", kind="tests.exec._jobs:slow",
            duration=d, value=f"v{i}",
        )
        for i, d in enumerate(durations)
    ]
    engine = SweepEngine(jobs=4, timeout=30.0)
    report = engine.run(specs)
    assert [r.key for r in report.outcomes] == ["00", "01", "02", "03"]
    assert report.values() == ["v0", "v1", "v2", "v3"]


def test_worker_crash_retries_then_succeeds(tmp_path):
    marker = tmp_path / "crashed-once"
    runner = ParallelRunner(jobs=2, retries=2, timeout=60.0)
    results = runner.run(
        [
            _spec(
                "c0", kind="tests.exec._jobs:crash_once", marker=str(marker)
            ),
            _spec("ok", kind="tests.exec._jobs:add", a=1, b=1),
        ]
    )
    assert results["ok"].ok and results["ok"].value == 2
    assert results["c0"].ok and results["c0"].value == "recovered"
    assert results["c0"].attempts == 2
    assert runner.crashes >= 1 and runner.retried >= 1


def test_worker_crash_exhausts_retries(tmp_path):
    runner = ParallelRunner(jobs=2, retries=1, timeout=60.0)
    results = runner.run(
        [
            _spec("dead", kind="tests.exec._jobs:crash"),
            _spec("ok", kind="tests.exec._jobs:add", a=3, b=4),
        ]
    )
    assert results["ok"].ok and results["ok"].value == 7
    dead = results["dead"]
    assert not dead.ok
    assert dead.attempts == 2  # initial + 1 retry
    assert "worker crash after 2 attempt(s)" in dead.error
    assert runner.crashes >= 2


def test_job_timeout_kills_and_reports(tmp_path):
    runner = ParallelRunner(jobs=2, retries=0, timeout=0.5)
    results = runner.run(
        [
            _spec("stuck", kind="tests.exec._jobs:slow", duration=60.0),
            _spec("ok", kind="tests.exec._jobs:add", a=1, b=2),
        ]
    )
    assert results["ok"].ok
    stuck = results["stuck"]
    assert not stuck.ok
    assert "timeout after 1 attempt(s)" in stuck.error
    assert runner.timeouts == 1


def test_in_job_exception_is_terminal_not_retried():
    runner = ParallelRunner(jobs=2, retries=2, timeout=60.0)
    results = runner.run(
        [
            _spec("bad", kind="tests.exec._jobs:boom", message="det-fail"),
            _spec("ok", kind="tests.exec._jobs:add", a=0, b=0),
        ]
    )
    bad = results["bad"]
    assert not bad.ok
    assert "det-fail" in bad.error
    assert bad.attempts == 1  # deterministic failure: no retry
    assert runner.retried == 0


def test_empty_sweep():
    assert ParallelRunner(jobs=2).run([]) == {}
