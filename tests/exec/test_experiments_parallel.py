"""Experiment grids produce identical figures through the sweep engine."""

from repro.exec import ResultStore, SweepEngine
from repro.experiments import run_fig3b, run_fig4a


def _series_points(result):
    return {label: s.points for label, s in result.series.items()}


def test_fig3b_parallel_equals_serial(tmp_path):
    shares = (0.25, 0.5, 1.0)
    serial = run_fig3b(shares=shares, seed=1)
    store = ResultStore(tmp_path / "cache")
    engine = SweepEngine(jobs=2, store=store, source="fp")
    parallel = run_fig3b(shares=shares, seed=1, engine=engine)
    assert _series_points(serial) == _series_points(parallel)

    # Second run: everything served from the cache, same figure.
    engine2 = SweepEngine(jobs=1, store=store, source="fp")
    cached = run_fig3b(shares=shares, seed=1, engine=engine2)
    assert _series_points(serial) == _series_points(cached)
    assert engine2.metrics.counter("exec.jobs.run").value == 0
    assert engine2.metrics.counter("exec.jobs.cached").value == len(shares) + 1


def test_fig4a_parallel_equals_serial():
    serial = run_fig4a(seed=0)
    parallel = run_fig4a(seed=0, engine=SweepEngine(jobs=2))
    assert _series_points(serial) == _series_points(parallel)
    assert serial.notes == parallel.notes
