"""JobSpec identity: canonical form, fingerprints, kind resolution."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.exec import (
    JobSpec,
    JobSpecError,
    cache_key,
    canonical_json,
    resolve_job,
)


def test_canonical_json_is_order_independent():
    a = canonical_json({"b": 1, "a": [1, 2], "c": {"y": 0, "x": 1}})
    b = canonical_json({"c": {"x": 1, "y": 0}, "a": [1, 2], "b": 1})
    assert a == b
    assert " " not in a


def test_canonical_json_rejects_non_jsonable():
    with pytest.raises(JobSpecError):
        canonical_json({"fn": lambda: None})
    with pytest.raises(JobSpecError):
        canonical_json({"nan": float("nan")})


def test_spec_fingerprint_ignores_payload_order():
    s1 = JobSpec(kind="tests.exec._jobs:echo", payload={"b": 2, "a": 1})
    s2 = JobSpec(kind="tests.exec._jobs:echo", payload={"a": 1, "b": 2})
    assert s1.fingerprint() == s2.fingerprint()
    assert s1.key == s2.key  # default key is the fingerprint


def test_spec_fingerprint_varies_with_content():
    base = JobSpec(kind="tests.exec._jobs:echo", payload={"a": 1}, seed=0)
    assert base.fingerprint() != JobSpec(
        kind="tests.exec._jobs:echo", payload={"a": 2}, seed=0
    ).fingerprint()
    assert base.fingerprint() != JobSpec(
        kind="tests.exec._jobs:echo", payload={"a": 1}, seed=1
    ).fingerprint()
    assert base.fingerprint() != JobSpec(
        kind="tests.exec._jobs:add", payload={"a": 1}, seed=0
    ).fingerprint()


def test_spec_round_trip_and_payload_copy():
    payload = {"a": 1}
    spec = JobSpec(kind="tests.exec._jobs:echo", payload=payload, seed=3)
    payload["a"] = 99  # caller mutation must not leak into the spec
    assert spec.payload == {"a": 1}
    clone = JobSpec.from_dict(spec.to_dict())
    assert clone == spec


def test_bad_kind_rejected():
    for kind in ("no_colon", "mod:", ":fn", "mod:fn:extra", "mod fn:x"):
        with pytest.raises(JobSpecError):
            JobSpec(kind=kind)


def test_resolve_job_errors():
    with pytest.raises(JobSpecError):
        resolve_job("definitely.not.a.module:fn")
    with pytest.raises(JobSpecError):
        resolve_job("tests.exec._jobs:no_such_function")
    assert resolve_job("tests.exec._jobs:add")({"a": 1, "b": 2}, 3) == 6


def test_cache_key_binds_source_and_spec():
    spec = JobSpec(kind="tests.exec._jobs:echo", payload={"a": 1})
    k1 = cache_key(spec, "source-a")
    assert k1 == cache_key(spec, "source-a")
    assert k1 != cache_key(spec, "source-b")
    assert len(k1) == 40


def _fingerprint_under_hashseed(hashseed: str) -> str:
    """Spec fingerprint + cache key computed in a fresh interpreter."""
    code = (
        "from repro.exec import JobSpec, cache_key\n"
        "s = JobSpec(kind='tests.exec._jobs:echo',"
        " payload={'zeta': 1, 'alpha': {'nested': [3, 2]}}, seed=7)\n"
        "print(s.fingerprint(), cache_key(s, 'src'))\n"
    )
    src = str(Path(__file__).resolve().parents[2] / "src")
    env = dict(os.environ, PYTHONHASHSEED=hashseed)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH", "")) if p
    )
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, check=True, env=env,
    )
    return out.stdout.strip()


def test_fingerprints_independent_of_pythonhashseed():
    assert _fingerprint_under_hashseed("0") == _fingerprint_under_hashseed("424242")
