"""Tests for QoS metrics, execution environments, tasks, and transitions."""

import pytest

from repro.tunable import (
    Configuration,
    ControlBox,
    ExecutionEnv,
    HostComponent,
    LinkComponent,
    MetricError,
    MetricRange,
    PendingChange,
    QoSMetric,
    QoSRecorder,
    TaskGraph,
    TaskSpec,
    TransitionSpec,
    TunabilityError,
)


# ---------------------------------------------------------------- metrics


def test_metric_direction():
    lower = QoSMetric("transmit_time", better="lower")
    higher = QoSMetric("resolution", better="higher")
    assert lower.is_better(1.0, 2.0)
    assert higher.is_better(4, 3)
    assert lower.best([3.0, 1.0, 2.0]) == 1.0
    assert higher.best([3, 1, 2]) == 3


def test_metric_invalid_direction():
    with pytest.raises(MetricError):
        QoSMetric("x", better="sideways")
    with pytest.raises(MetricError):
        QoSMetric("x").best([])


def test_metric_range():
    rng = MetricRange("t", lo=0.0, hi=10.0)
    assert rng.contains(10.0)
    assert not rng.contains(10.1)
    with pytest.raises(MetricError):
        MetricRange("t", lo=5.0, hi=1.0)


def test_recorder_update_and_series():
    rec = QoSRecorder([QoSMetric("t"), QoSMetric("r", better="higher")])
    rec.update("t", 5.0, time=1.0)
    rec.accumulate("t", 2.0, time=2.0)
    assert rec.get("t") == 7.0
    assert rec.series_for("t") == [(1.0, 5.0), (2.0, 7.0)]
    assert rec.get("r") is None


def test_recorder_running_avg():
    rec = QoSRecorder([QoSMetric("response")])
    rec.running_avg("response", 1.0)
    rec.running_avg("response", 3.0)
    rec.running_avg("response", 5.0)
    assert rec.get("response") == pytest.approx(3.0)


def test_recorder_unknown_metric():
    rec = QoSRecorder([QoSMetric("t")])
    with pytest.raises(MetricError):
        rec.update("oops", 1.0)


def test_recorder_duplicate_metrics_rejected():
    with pytest.raises(MetricError):
        QoSRecorder([QoSMetric("t"), QoSMetric("t")])


def test_recorder_satisfies_ranges():
    rec = QoSRecorder([QoSMetric("t"), QoSMetric("r", better="higher")])
    rec.update("t", 5.0)
    rec.update("r", 4)
    assert rec.satisfies([MetricRange("t", hi=10.0)])
    assert not rec.satisfies([MetricRange("t", hi=1.0)])
    # Missing metric fails the constraint.
    rec2 = QoSRecorder([QoSMetric("t")])
    assert not rec2.satisfies([MetricRange("t", hi=10.0)])


# ------------------------------------------------------------ environment


def test_env_resource_names():
    env = ExecutionEnv(
        [HostComponent("client"), HostComponent("server")],
        [LinkComponent("client", "server")],
    )
    names = env.resource_names()
    assert "client.cpu" in names
    assert "server.network" in names
    assert "client.disk" in names
    assert len(names) == 8  # 2 hosts x {cpu, memory, network, disk}
    env.validate_resource("client.cpu")
    with pytest.raises(ValueError):
        env.validate_resource("client.gpu")


def test_env_validation():
    with pytest.raises(ValueError):
        ExecutionEnv([])
    with pytest.raises(ValueError):
        ExecutionEnv([HostComponent("a"), HostComponent("a")])
    with pytest.raises(ValueError):
        ExecutionEnv([HostComponent("a")], [LinkComponent("a", "ghost")])
    with pytest.raises(ValueError):
        HostComponent("a", resources=("cpu", "gpu"))


def test_env_to_specs():
    env = ExecutionEnv(
        [HostComponent("client", cpu_speed=450.0, mem_pages=1024)],
    )
    spec = env.host_specs()[0]
    assert spec.name == "client"
    assert spec.cpu_speed == 450.0
    assert spec.mem_pages == 1024


# ----------------------------------------------------------------- tasks


def cfg(**kw):
    return Configuration(kw)


def test_task_instance_name():
    task = TaskSpec("module", params=("l", "dR", "c"))
    name = task.instance_name(cfg(l=4, dR=80, c="lzw"))
    assert name == "module[l=4][dR=80][c=lzw]"


def test_task_guard_and_execution_path():
    t1 = TaskSpec("fetch", guard=lambda c: c.mode == "remote")
    t2 = TaskSpec("render")
    graph = TaskGraph([t1, t2], edges=[("fetch", "render")])
    assert [t.name for t in graph.execution_path(cfg(mode="remote"))] == [
        "fetch",
        "render",
    ]
    assert [t.name for t in graph.execution_path(cfg(mode="local"))] == ["render"]


def test_task_graph_rejects_cycles():
    t1, t2 = TaskSpec("a"), TaskSpec("b")
    with pytest.raises(TunabilityError, match="cycle"):
        TaskGraph([t1, t2], edges=[("a", "b"), ("b", "a")])


def test_task_graph_unknown_edge():
    with pytest.raises(TunabilityError):
        TaskGraph([TaskSpec("a")], edges=[("a", "zzz")])


def test_task_graph_duplicate_names():
    with pytest.raises(TunabilityError):
        TaskGraph([TaskSpec("a"), TaskSpec("a")])


def test_resources_used_unions_path():
    t1 = TaskSpec("a", resources=("client.cpu",))
    t2 = TaskSpec("b", resources=("client.cpu", "client.network"))
    graph = TaskGraph([t1, t2], edges=[("a", "b")])
    assert graph.resources_used(cfg(x=1)) == ["client.cpu", "client.network"]


def test_task_graph_lookup():
    graph = TaskGraph([TaskSpec("a")])
    assert "a" in graph
    assert graph.task("a").name == "a"
    with pytest.raises(TunabilityError):
        graph.task("b")


# ------------------------------------------------------------ transitions


def drive(gen):
    """Run a transition-apply generator that yields nothing."""
    result = None
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        result = stop.value
    return result


def test_controlbox_apply_pending():
    box = ControlBox(cfg(c="lzw"))
    applied = []
    box.request(PendingChange(cfg(c="bzip2"), on_applied=applied.append))
    assert box.has_pending
    new = drive(box.apply(ctx=None, time=5.0))
    assert new == cfg(c="bzip2")
    assert box.current == cfg(c="bzip2")
    assert applied == [True]
    assert box.history == [(5.0, cfg(c="lzw"), cfg(c="bzip2"))]


def test_controlbox_noop_change_applies_immediately():
    box = ControlBox(cfg(c="lzw"))
    applied = []
    box.request(PendingChange(cfg(c="lzw"), on_applied=applied.append))
    assert not box.has_pending
    assert applied == [True]


def test_controlbox_newer_request_supersedes():
    box = ControlBox(cfg(c="lzw"))
    outcomes = {}
    box.request(PendingChange(cfg(c="bzip2"), on_applied=lambda ok: outcomes.setdefault("old", ok)))
    box.request(PendingChange(cfg(c="none"), on_applied=lambda ok: outcomes.setdefault("new", ok)))
    drive(box.apply(ctx=None))
    assert outcomes == {"old": False, "new": True}
    assert box.current == cfg(c="none")


def test_controlbox_guard_rejects():
    guard = TransitionSpec(guard=lambda old, new: new.c != "forbidden")
    box = ControlBox(cfg(c="lzw"), transitions=(guard,))
    outcome = []
    box.request(PendingChange(cfg(c="forbidden"), on_applied=outcome.append))
    drive(box.apply(ctx=None))
    assert outcome == [False]
    assert box.current == cfg(c="lzw")


def test_controlbox_handler_runs_with_old_and_new():
    seen = {}

    def handler(ctx, old, new):
        seen["old"], seen["new"], seen["ctx"] = old, new, ctx

    box = ControlBox(cfg(c="lzw"), transitions=(TransitionSpec(handler=handler),))
    box.request(PendingChange(cfg(c="bzip2")))
    drive(box.apply(ctx="CTX"))
    assert seen == {"old": cfg(c="lzw"), "new": cfg(c="bzip2"), "ctx": "CTX"}


def test_controlbox_generator_handler_is_driven():
    steps = []

    def handler(ctx, old, new):
        steps.append("start")
        yield "an-event"
        steps.append("end")

    box = ControlBox(cfg(c="a"), transitions=(TransitionSpec(handler=handler),))
    box.request(PendingChange(cfg(c="b")))
    gen = box.apply(ctx=None)
    yielded = next(gen)
    assert yielded == "an-event"
    drive(gen)
    assert steps == ["start", "end"]
    assert box.current == cfg(c="b")


def test_controlbox_apply_without_pending_is_noop():
    box = ControlBox(cfg(c="a"))
    assert drive(box.apply(ctx=None)) is None
