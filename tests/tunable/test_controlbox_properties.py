"""Property-based tests for ControlBox reconfiguration semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tunable import Configuration, ControlBox, PendingChange

values = st.sampled_from(["a", "b", "c", "d"])


def drain(gen):
    try:
        while True:
            next(gen)
    except StopIteration:
        pass


@given(requests=st.lists(values, min_size=1, max_size=20))
@settings(max_examples=100, deadline=None)
def test_last_request_wins(requests):
    """Any burst of requests between safe points applies only the last."""
    box = ControlBox(Configuration({"v": "init"}))
    outcomes = {}
    for i, v in enumerate(requests):
        box.request(
            PendingChange(
                Configuration({"v": v}),
                on_applied=lambda ok, i=i: outcomes.setdefault(i, ok),
            )
        )
    drain(box.apply(ctx=None, time=1.0))
    assert box.current == Configuration({"v": requests[-1]})
    # Exactly the last request succeeded; superseded ones reported False
    # (a request equal to the then-current config applies immediately and
    # also reports True).
    assert outcomes[len(requests) - 1] is True
    assert len(box.history) <= len(requests)


@given(
    sequence=st.lists(st.tuples(values, st.booleans()), min_size=1, max_size=15)
)
@settings(max_examples=100, deadline=None)
def test_history_reconstructs_current(sequence):
    """Replaying the switch history from the initial config always lands
    on the current config (no lost or phantom switches)."""
    box = ControlBox(Configuration({"v": "init"}))
    for v, apply_now in sequence:
        box.request(PendingChange(Configuration({"v": v})))
        if apply_now:
            drain(box.apply(ctx=None))
    drain(box.apply(ctx=None))
    state = Configuration({"v": "init"})
    for _, old, new in box.history:
        assert old == state
        state = new
    assert state == box.current


@given(requests=st.lists(values, min_size=1, max_size=10))
@settings(max_examples=100, deadline=None)
def test_apply_is_idempotent_when_no_pending(requests):
    box = ControlBox(Configuration({"v": "init"}))
    for v in requests:
        box.request(PendingChange(Configuration({"v": v})))
    drain(box.apply(ctx=None))
    before = (box.current, len(box.history))
    for _ in range(3):
        drain(box.apply(ctx=None))
    assert (box.current, len(box.history)) == before
