"""Tests for TunableApp instantiation and the preprocessor."""

import pytest

from repro.sandbox import ResourceLimits, Testbed
from repro.tunable import (
    ConfigSpace,
    Configuration,
    ControlParameter,
    ExecutionEnv,
    HostComponent,
    Preprocessor,
    QoSMetric,
    TaskGraph,
    TaskSpec,
    TunabilityError,
    TunableApp,
)


def simple_app():
    """A one-host app whose single task burns CPU proportional to `n`."""
    space = ConfigSpace([ControlParameter("n", (10, 20))])
    env = ExecutionEnv([HostComponent("node", cpu_speed=100.0)])
    metrics = [QoSMetric("elapsed", better="lower", unit="s")]
    tasks = TaskGraph(
        [TaskSpec("burn", params=("n",), resources=("node.cpu",), metrics=("elapsed",))]
    )

    def launcher(rt):
        def main():
            sb = rt.sandbox("node")
            t0 = rt.sim.now
            yield sb.compute(float(rt.config.n))
            rt.qos.update("elapsed", rt.sim.now - t0, time=rt.sim.now)

        return rt.sim.process(main(), name="burn-main")

    return TunableApp(
        name="burner",
        space=space,
        env=env,
        metrics=metrics,
        tasks=tasks,
        launcher=launcher,
    )


def test_instantiate_and_run():
    app = simple_app()
    tb = Testbed(host_specs=app.env.host_specs())
    rt = app.instantiate(tb, Configuration({"n": 20}))
    tb.run()
    assert rt.finished.triggered
    assert rt.qos.get("elapsed") == pytest.approx(0.2)


def test_instantiate_applies_limits():
    app = simple_app()
    tb = Testbed(host_specs=app.env.host_specs())
    rt = app.instantiate(
        tb,
        Configuration({"n": 20}),
        limits={"node": ResourceLimits(cpu_share=0.5)},
    )
    tb.run()
    assert rt.qos.get("elapsed") == pytest.approx(0.4)


def test_instantiate_rejects_invalid_config():
    app = simple_app()
    tb = Testbed(host_specs=app.env.host_specs())
    with pytest.raises(TunabilityError):
        app.instantiate(tb, Configuration({"n": 15}))


def test_instantiate_requires_hosts_in_testbed():
    app = simple_app()
    tb = Testbed(host_specs=[])
    with pytest.raises(TunabilityError, match="lacks host"):
        app.instantiate(tb, Configuration({"n": 10}))


def test_app_cross_checks_task_annotations():
    space = ConfigSpace([ControlParameter("n", (1,))])
    env = ExecutionEnv([HostComponent("node")])
    metrics = [QoSMetric("m")]

    def launcher(rt):  # pragma: no cover - never invoked
        raise AssertionError

    with pytest.raises(TunabilityError, match="unknown parameter"):
        TunableApp(
            "x", space, env, metrics,
            TaskGraph([TaskSpec("t", params=("zz",))]),
            launcher=launcher,
        )
    with pytest.raises(TunabilityError, match="unknown metric"):
        TunableApp(
            "x", space, env, metrics,
            TaskGraph([TaskSpec("t", metrics=("zz",))]),
            launcher=launcher,
        )
    with pytest.raises(TunabilityError, match="unknown resource"):
        TunableApp(
            "x", space, env, metrics,
            TaskGraph([TaskSpec("t", resources=("node.gpu",))]),
            launcher=launcher,
        )
    with pytest.raises(TunabilityError, match="no launcher"):
        TunableApp("x", space, env, metrics, TaskGraph([TaskSpec("t")]))


def test_app_metric_lookup():
    app = simple_app()
    assert app.metric("elapsed").better == "lower"
    with pytest.raises(TunabilityError):
        app.metric("zzz")


def test_runtime_sandbox_lookup_error():
    app = simple_app()
    tb = Testbed(host_specs=app.env.host_specs())
    rt = app.instantiate(tb, Configuration({"n": 10}))
    with pytest.raises(TunabilityError):
        rt.sandbox("ghost")


# ------------------------------------------------------------ preprocessor


def test_preprocessor_config_file():
    pre = Preprocessor(simple_app())
    cf = pre.config_file()
    assert cf.app_name == "burner"
    assert cf.parameters == {"n": (10, 20)}
    assert len(cf.configurations) == 2
    d = cf.to_dict()
    assert d["parameters"] == {"n": [10, 20]}
    assert {"n": 10} in d["configurations"]


def test_preprocessor_database_template():
    pre = Preprocessor(simple_app())
    tpl = pre.database_template()
    assert tpl.param_names == ["n"]
    assert "node.cpu" in tpl.resource_dims
    assert tpl.metric_names == ["elapsed"]
    assert tpl.metric_directions == {"elapsed": "lower"}
    assert tpl.to_dict()["app"] == "burner"


def test_preprocessor_monitoring_plan():
    pre = Preprocessor(simple_app())
    plan = pre.monitoring_plan()
    config = Configuration({"n": 10})
    assert plan.resources_for(config) == ["node.cpu"]
    assert plan.to_dict()["app"] == "burner"
