"""Tests for control parameters, configurations, and config spaces."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tunable import ConfigSpace, Configuration, ControlParameter, TunabilityError


def space_3knob():
    return ConfigSpace(
        [
            ControlParameter("dR", (80, 160, 320)),
            ControlParameter("c", ("lzw", "bzip2")),
            ControlParameter("l", (3, 4)),
        ]
    )


def test_parameter_validation():
    p = ControlParameter("x", (1, 2, 3))
    p.validate(2)
    with pytest.raises(TunabilityError):
        p.validate(5)


def test_parameter_rejects_bad_names_and_domains():
    with pytest.raises(TunabilityError):
        ControlParameter("not a name", (1,))
    with pytest.raises(TunabilityError):
        ControlParameter("x", ())
    with pytest.raises(TunabilityError):
        ControlParameter("x", (1, 1))


def test_configuration_mapping_and_attribute_access():
    c = Configuration({"dR": 80, "c": "lzw"})
    assert c["dR"] == 80
    assert c.c == "lzw"
    assert len(c) == 2
    assert set(c) == {"dR", "c"}
    with pytest.raises(AttributeError):
        _ = c.nonexistent


def test_configuration_immutable():
    c = Configuration({"x": 1})
    with pytest.raises(TunabilityError):
        c.x = 2


def test_configuration_hash_eq_independent_of_order():
    a = Configuration({"x": 1, "y": 2})
    b = Configuration({"y": 2, "x": 1})
    assert a == b
    assert hash(a) == hash(b)
    assert a == {"x": 1, "y": 2}


def test_configuration_with_():
    a = Configuration({"x": 1, "y": 2})
    b = a.with_(y=3)
    assert b == {"x": 1, "y": 3}
    assert a.y == 2


def test_configuration_label_sorted():
    assert Configuration({"b": 2, "a": 1}).label() == "a=1,b=2"


def test_space_enumerate_size():
    space = space_3knob()
    configs = space.enumerate()
    assert len(configs) == 12
    assert len(set(configs)) == 12
    assert space.size() == 12


def test_space_guard_filters():
    space = ConfigSpace(
        [
            ControlParameter("dR", (80, 320)),
            ControlParameter("l", (3, 4)),
        ],
        # Guard: large fovea only at low resolution.
        guard=lambda c: not (c.dR == 320 and c.l == 4),
    )
    configs = space.enumerate()
    assert len(configs) == 3
    assert Configuration({"dR": 320, "l": 4}) not in space
    with pytest.raises(TunabilityError):
        space.validate(Configuration({"dR": 320, "l": 4}))


def test_space_validate_missing_and_extra_keys():
    space = space_3knob()
    with pytest.raises(TunabilityError, match="missing"):
        space.validate(Configuration({"dR": 80}))
    with pytest.raises(TunabilityError, match="extra"):
        space.validate(Configuration({"dR": 80, "c": "lzw", "l": 3, "zz": 1}))


def test_space_validate_bad_value():
    space = space_3knob()
    with pytest.raises(TunabilityError):
        space.validate(Configuration({"dR": 81, "c": "lzw", "l": 3}))


def test_space_guard_rejecting_everything():
    space = ConfigSpace([ControlParameter("x", (1, 2))], guard=lambda c: False)
    with pytest.raises(TunabilityError):
        space.enumerate()


def test_space_needs_parameters():
    with pytest.raises(TunabilityError):
        ConfigSpace([])


def test_space_duplicate_parameter_names():
    with pytest.raises(TunabilityError):
        ConfigSpace([ControlParameter("x", (1,)), ControlParameter("x", (2,))])


def test_space_default_is_first():
    space = space_3knob()
    assert space.default() == {"dR": 80, "c": "lzw", "l": 3}


def test_space_parameter_lookup():
    space = space_3knob()
    assert space.parameter("c").domain == ("lzw", "bzip2")
    with pytest.raises(TunabilityError):
        space.parameter("zzz")


@given(
    st.dictionaries(
        st.sampled_from(["a", "b", "c", "d"]),
        st.integers(-5, 5),
        min_size=1,
    )
)
@settings(max_examples=100, deadline=None)
def test_configuration_roundtrip_property(values):
    config = Configuration(values)
    assert dict(config) == values
    assert Configuration(dict(config)) == config
    assert hash(Configuration(dict(config))) == hash(config)
