"""Tests for AnyOf / AllOf condition events."""

import pytest

from repro.sim import Simulator


def test_any_of_fires_on_first():
    sim = Simulator()

    def proc():
        fast = sim.timeout(1.0, value="fast")
        slow = sim.timeout(5.0, value="slow")
        result = yield sim.any_of([fast, slow])
        return (sim.now, fast in result, slow in result, result[fast])

    now, has_fast, has_slow, val = sim.run_process(proc())
    assert now == 1.0
    assert has_fast and not has_slow
    assert val == "fast"


def test_all_of_waits_for_every_event():
    sim = Simulator()

    def proc():
        a = sim.timeout(1.0, value="a")
        b = sim.timeout(3.0, value="b")
        result = yield sim.all_of([a, b])
        return (sim.now, [result[e] for e in result])

    now, values = sim.run_process(proc())
    assert now == 3.0
    assert values == ["a", "b"]


def test_all_of_preserves_declaration_order():
    sim = Simulator()

    def proc():
        late = sim.timeout(2.0, value="late")
        early = sim.timeout(1.0, value="early")
        result = yield sim.all_of([late, early])
        return [result[e] for e in result]

    # Order follows the order events were passed in, not firing order.
    assert sim.run_process(proc()) == ["late", "early"]


def test_empty_condition_fires_immediately():
    sim = Simulator()

    def proc():
        result = yield sim.all_of([])
        return (sim.now, len(result))

    assert sim.run_process(proc()) == (0.0, 0)


def test_any_of_with_already_triggered_event():
    sim = Simulator()

    def proc():
        done = sim.event()
        done.succeed("pre")
        yield sim.timeout(1.0)  # let `done` be processed
        result = yield sim.any_of([done, sim.timeout(10.0)])
        return (sim.now, result[done])

    assert sim.run_process(proc()) == (1.0, "pre")


def test_condition_failure_propagates():
    sim = Simulator()

    def proc():
        bad = sim.event()
        good = sim.timeout(10.0)

        def fail_later():
            yield sim.timeout(1.0)
            bad.fail(ValueError("child failed"))

        sim.process(fail_later())
        try:
            yield sim.all_of([bad, good])
        except ValueError as exc:
            return str(exc)

    assert sim.run_process(proc()) == "child failed"


def test_condition_value_equality_with_dict():
    sim = Simulator()

    def proc():
        a = sim.timeout(1.0, value=1)
        result = yield sim.all_of([a])
        assert result == {a: 1}
        assert result.todict() == {a: 1}
        return True

    assert sim.run_process(proc())


def test_condition_value_missing_key_raises():
    sim = Simulator()

    def proc():
        a = sim.timeout(1.0, value=1)
        b = sim.timeout(5.0, value=2)
        result = yield sim.any_of([a, b])
        with pytest.raises(KeyError):
            _ = result[b]
        return True

    assert sim.run_process(proc())


def test_nested_conditions():
    sim = Simulator()

    def proc():
        a = sim.timeout(1.0, value="a")
        b = sim.timeout(2.0, value="b")
        c = sim.timeout(9.0, value="c")
        inner = sim.all_of([a, b])
        result = yield sim.any_of([inner, c])
        return (sim.now, inner in result)

    now, inner_won = sim.run_process(proc())
    assert now == 2.0
    assert inner_won
