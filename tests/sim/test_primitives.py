"""Tests for Store / Resource / Container primitives."""

import pytest

from repro.sim import Container, Resource, SimulationError, Simulator, Store


# ---------------------------------------------------------------- Store


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)

    def proc():
        yield store.put("msg")
        item = yield store.get()
        return item

    assert sim.run_process(proc()) == "msg"


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    times = {}

    def consumer():
        item = yield store.get()
        times["got"] = (sim.now, item)

    def producer():
        yield sim.timeout(3.0)
        yield store.put("late")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert times["got"] == (3.0, "late")


def test_store_fifo_ordering():
    sim = Simulator()
    store = Store(sim)
    received = []

    def producer():
        for i in range(5):
            yield store.put(i)

    def consumer():
        for _ in range(5):
            item = yield store.get()
            received.append(item)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert received == [0, 1, 2, 3, 4]


def test_store_capacity_blocks_put():
    sim = Simulator()
    store = Store(sim, capacity=1)
    progress = []

    def producer():
        yield store.put("a")
        progress.append(("a", sim.now))
        yield store.put("b")
        progress.append(("b", sim.now))

    def consumer():
        yield sim.timeout(5.0)
        yield store.get()

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert progress == [("a", 0.0), ("b", 5.0)]


def test_store_invalid_capacity():
    with pytest.raises(SimulationError):
        Store(Simulator(), capacity=0)


def test_store_filtered_get():
    sim = Simulator()
    store = Store(sim)

    def proc():
        yield store.put({"id": 1})
        yield store.put({"id": 2})
        match = yield store.get(filter=lambda m: m["id"] == 2)
        return (match["id"], len(store))

    assert sim.run_process(proc()) == (2, 1)


def test_store_filtered_get_waits_for_matching_item():
    sim = Simulator()
    store = Store(sim)
    result = {}

    def consumer():
        match = yield store.get(filter=lambda m: m == "wanted")
        result["t"] = sim.now
        result["item"] = match

    def producer():
        yield store.put("other")
        yield sim.timeout(2.0)
        yield store.put("wanted")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert result == {"t": 2.0, "item": "wanted"}
    assert list(store.items) == ["other"]


def test_store_none_item_is_deliverable():
    sim = Simulator()
    store = Store(sim)

    def proc():
        yield store.put(None)
        item = yield store.get()
        return item is None

    assert sim.run_process(proc()) is True


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() is None
    store.put("x")
    sim.run()
    assert store.try_get() == "x"
    assert store.try_get() is None


def test_store_multiple_consumers_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(name):
        item = yield store.get()
        got.append((name, item))

    def producer():
        yield sim.timeout(1.0)
        yield store.put("first")
        yield store.put("second")

    sim.process(consumer("c1"))
    sim.process(consumer("c2"))
    sim.process(producer())
    sim.run()
    assert got == [("c1", "first"), ("c2", "second")]


# ---------------------------------------------------------------- Resource


def test_resource_mutual_exclusion():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    trace = []

    def worker(name, hold):
        with res.request() as req:
            yield req
            trace.append((name, "in", sim.now))
            yield sim.timeout(hold)
        trace.append((name, "out", sim.now))

    sim.process(worker("a", 2.0))
    sim.process(worker("b", 1.0))
    sim.run()
    assert trace == [
        ("a", "in", 0.0),
        ("a", "out", 2.0),
        ("b", "in", 2.0),
        ("b", "out", 3.0),
    ]


def test_resource_capacity_two_admits_two():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    entered = []

    def worker(name):
        with res.request() as req:
            yield req
            entered.append((name, sim.now))
            yield sim.timeout(1.0)

    for name in ("a", "b", "c"):
        sim.process(worker(name))
    sim.run()
    assert entered == [("a", 0.0), ("b", 0.0), ("c", 1.0)]


def test_resource_counts():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def holder():
        with res.request() as req:
            yield req
            assert res.count == 1
            assert res.queue_length == 1  # the waiter below
            yield sim.timeout(1.0)

    def waiter():
        with res.request() as req:
            yield req

    sim.process(holder())
    sim.process(waiter())
    sim.run()
    assert res.count == 0


def test_resource_cancel_queued_request():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def holder():
        with res.request() as req:
            yield req
            yield sim.timeout(10.0)

    def impatient():
        req = res.request()
        yield sim.timeout(1.0)
        req.release()  # cancel while still queued
        return res.queue_length

    sim.process(holder())
    proc = sim.process(impatient())
    sim.run()
    assert proc.value == 0


def test_resource_invalid_capacity():
    with pytest.raises(SimulationError):
        Resource(Simulator(), capacity=0)


# ---------------------------------------------------------------- Container


def test_container_get_blocks_until_level():
    sim = Simulator()
    tank = Container(sim, capacity=10.0, init=0.0)
    times = {}

    def consumer():
        yield tank.get(5.0)
        times["got"] = sim.now

    def producer():
        yield sim.timeout(1.0)
        yield tank.put(3.0)
        yield sim.timeout(1.0)
        yield tank.put(3.0)

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert times["got"] == 2.0
    assert tank.level == pytest.approx(1.0)


def test_container_put_blocks_at_capacity():
    sim = Simulator()
    tank = Container(sim, capacity=5.0, init=5.0)
    times = {}

    def producer():
        yield tank.put(2.0)
        times["put"] = sim.now

    def consumer():
        yield sim.timeout(4.0)
        yield tank.get(3.0)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert times["put"] == 4.0


def test_container_validation():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Container(sim, capacity=0)
    with pytest.raises(SimulationError):
        Container(sim, capacity=1.0, init=2.0)
    tank = Container(sim, capacity=1.0)
    with pytest.raises(SimulationError):
        tank.put(0)
    with pytest.raises(SimulationError):
        tank.get(-1.0)
