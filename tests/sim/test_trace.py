"""Tests for the simulation tracer."""

import pytest

from repro.sim import FluidShare, Simulator, Tracer


def test_probe_samples_periodically():
    sim = Simulator()
    tracer = Tracer(sim)
    counter = {"n": 0}

    def gauge():
        counter["n"] += 1
        return float(counter["n"])

    tracer.add_probe("count", gauge, period=0.5)
    sim.run(until=2.6)
    tracer.stop()
    series = tracer.series("count")
    assert [t for t, _ in series] == pytest.approx([0.5, 1.0, 1.5, 2.0, 2.5])
    assert [v for _, v in series] == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_probe_none_skips_sample():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.add_probe("odd", lambda: None, period=0.1)
    sim.run(until=1.0)
    tracer.stop()
    assert tracer.series("odd") == []


def test_probe_tracks_fluid_utilization():
    sim = Simulator()
    cpu = FluidShare(sim, speed=100.0)
    tracer = Tracer(sim)
    snap = {"prev": cpu.snapshot()}

    def utilization():
        t0, served0 = snap["prev"]
        u = cpu.utilization_since(t0, served0)
        snap["prev"] = cpu.snapshot()
        return u

    tracer.add_probe("util", utilization, period=0.25)
    cpu.submit(work=50.0, cap=50.0)  # busy at 50% for 1 s
    sim.run(until=2.0)
    tracer.stop()
    assert tracer.mean("util", 0.0, 1.0) == pytest.approx(0.5, abs=0.01)
    assert tracer.mean("util", 1.26, 2.0) == pytest.approx(0.0, abs=0.01)


def test_marks_and_export():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.add_probe("zero", lambda: 0.0, period=1.0)

    def marker():
        yield sim.timeout(1.5)
        tracer.mark("resource drop")

    sim.process(marker())
    sim.run(until=3.0)
    tracer.stop()
    data = tracer.to_dict()
    assert data["marks"] == [(1.5, "resource drop")]
    assert len(data["probes"]["zero"]) == 3


def test_validation():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.add_probe("a", lambda: 1.0)
    with pytest.raises(ValueError):
        tracer.add_probe("a", lambda: 2.0)
    with pytest.raises(ValueError):
        tracer.add_probe("b", lambda: 1.0, period=0.0)
    with pytest.raises(KeyError):
        tracer.series("ghost")
    assert tracer.mean("a") is None  # no samples yet
