"""Tests for the simulation tracer."""

import pytest

from repro.sim import FluidShare, Simulator, Tracer


def test_probe_samples_periodically():
    sim = Simulator()
    tracer = Tracer(sim)
    counter = {"n": 0}

    def gauge():
        counter["n"] += 1
        return float(counter["n"])

    tracer.add_probe("count", gauge, period=0.5)
    sim.run(until=2.6)
    tracer.stop()
    series = tracer.series("count")
    assert [t for t, _ in series] == pytest.approx([0.5, 1.0, 1.5, 2.0, 2.5])
    assert [v for _, v in series] == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_probe_none_skips_sample():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.add_probe("odd", lambda: None, period=0.1)
    sim.run(until=1.0)
    tracer.stop()
    assert tracer.series("odd") == []


def test_probe_tracks_fluid_utilization():
    sim = Simulator()
    cpu = FluidShare(sim, speed=100.0)
    tracer = Tracer(sim)
    snap = {"prev": cpu.snapshot()}

    def utilization():
        t0, served0 = snap["prev"]
        u = cpu.utilization_since(t0, served0)
        snap["prev"] = cpu.snapshot()
        return u

    tracer.add_probe("util", utilization, period=0.25)
    cpu.submit(work=50.0, cap=50.0)  # busy at 50% for 1 s
    sim.run(until=2.0)
    tracer.stop()
    assert tracer.mean("util", 0.0, 1.0) == pytest.approx(0.5, abs=0.01)
    assert tracer.mean("util", 1.26, 2.0) == pytest.approx(0.0, abs=0.01)


def test_marks_and_export():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.add_probe("zero", lambda: 0.0, period=1.0)

    def marker():
        yield sim.timeout(1.5)
        tracer.mark("resource drop")

    sim.process(marker())
    sim.run(until=3.0)
    tracer.stop()
    data = tracer.to_dict()
    assert data["marks"] == [(1.5, "resource drop")]
    assert len(data["probes"]["zero"]) == 3


def test_mean_is_time_weighted_by_default():
    """Irregular sampling no longer biases the mean toward dense regions."""
    sim = Simulator()
    tracer = Tracer(sim)
    probe = tracer.add_probe("v", lambda: None, period=1.0)
    # 1s at 0, then a burst of 10s: time-weighted mean over [0, 2] is 3.75
    # (trapezoids: 1s at 0, 0.5s ramp 0->10 avg 5, 0.5s at 10), while the
    # arithmetic mean over the 4 points is 5.0.
    for t, v in [(0.0, 0.0), (1.0, 0.0), (1.5, 10.0), (2.0, 10.0)]:
        probe.samples.append((t, v))
    assert tracer.mean("v") == pytest.approx(3.75)
    assert tracer.mean("v", weighted=False) == pytest.approx(5.0)
    # Single in-window sample degenerates to its own value either way.
    assert tracer.mean("v", 1.4, 1.6) == pytest.approx(10.0)


def test_stop_terminates_probe_processes():
    """stop() must interrupt parked probes, not just flag them: an
    idle-check right after stop() sees no live probe processes."""
    sim = Simulator()
    tracer = Tracer(sim)
    a = tracer.add_probe("a", lambda: 1.0, period=0.5)
    b = tracer.add_probe("b", lambda: 2.0, period=0.7)
    sim.run(until=2.0)
    assert a.process.is_alive and b.process.is_alive
    tracer.stop()
    sim.run(until=2.1)  # deliver the (urgent, zero-delay) interrupts
    assert not a.process.is_alive
    assert not b.process.is_alive
    before = len(a.samples)
    sim.run(until=10.0)  # nothing left to fire
    assert len(a.samples) == before
    tracer.stop()  # idempotent


def test_probe_samples_shared_with_registry():
    sim = Simulator()
    tracer = Tracer(sim)
    probe = tracer.add_probe("x", lambda: 1.0, period=0.5)
    sim.run(until=1.1)
    tracer.stop()
    assert tracer.registry.series("x").samples is probe.samples
    assert tracer.registry.snapshot()["x"]["samples"] == [
        [t, v] for t, v in probe.samples
    ]


def test_validation():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.add_probe("a", lambda: 1.0)
    with pytest.raises(ValueError):
        tracer.add_probe("a", lambda: 2.0)
    with pytest.raises(ValueError):
        tracer.add_probe("b", lambda: 1.0, period=0.0)
    with pytest.raises(KeyError):
        tracer.series("ghost")
    assert tracer.mean("a") is None  # no samples yet
