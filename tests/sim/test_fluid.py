"""Tests for the fluid (GPS with caps) resource model."""

import pytest

from repro.sim import FluidShare, SimulationError, Simulator


def run_until_done(sim, *jobs):
    sim.run()
    for job in jobs:
        assert job.finished


def test_single_job_runs_at_full_speed():
    sim = Simulator()
    cpu = FluidShare(sim, speed=100.0)
    job = cpu.submit(work=50.0)
    run_until_done(sim, job)
    assert job.done.value == pytest.approx(0.5)


def test_two_equal_jobs_share_equally():
    sim = Simulator()
    cpu = FluidShare(sim, speed=100.0)
    a = cpu.submit(work=100.0)
    b = cpu.submit(work=100.0)
    run_until_done(sim, a, b)
    # Each runs at 50 for the whole time -> both finish at t=2.
    assert a.done.value == pytest.approx(2.0)
    assert b.done.value == pytest.approx(2.0)


def test_weighted_sharing():
    sim = Simulator()
    cpu = FluidShare(sim, speed=100.0)
    heavy = cpu.submit(work=150.0, weight=3.0)
    light = cpu.submit(work=50.0, weight=1.0)
    run_until_done(sim, heavy, light)
    # heavy gets 75/s, light 25/s -> both finish at t=2.
    assert heavy.done.value == pytest.approx(2.0)
    assert light.done.value == pytest.approx(2.0)


def test_departure_releases_capacity():
    sim = Simulator()
    cpu = FluidShare(sim, speed=100.0)
    short = cpu.submit(work=50.0)
    long = cpu.submit(work=150.0)
    run_until_done(sim, short, long)
    # Both run at 50 until t=1 (short done, long has 100 left); then long
    # runs at 100, finishing at t=2.
    assert short.done.value == pytest.approx(1.0)
    assert long.done.value == pytest.approx(2.0)


def test_cap_limits_rate_even_when_alone():
    sim = Simulator()
    cpu = FluidShare(sim, speed=100.0)
    job = cpu.submit(work=50.0, cap=25.0)
    run_until_done(sim, job)
    assert job.done.value == pytest.approx(2.0)


def test_cap_excess_redistributed_to_uncapped_job():
    sim = Simulator()
    cpu = FluidShare(sim, speed=100.0)
    capped = cpu.submit(work=20.0, cap=20.0)
    free = cpu.submit(work=160.0)
    run_until_done(sim, capped, free)
    # capped runs at 20, free at 80 -> capped done at t=1 (80 of free's work
    # done); free then runs at 100/s for its remaining 80 -> t=1.8.
    assert capped.done.value == pytest.approx(1.0)
    assert free.done.value == pytest.approx(1.8)


def test_water_filling_multiple_caps():
    sim = Simulator()
    cpu = FluidShare(sim, speed=100.0)
    a = cpu.submit(work=1000.0, cap=10.0)
    b = cpu.submit(work=1000.0, cap=20.0)
    c = cpu.submit(work=1000.0)
    sim.run(until=1.0)
    cpu.sync()  # accumulators advance lazily at event boundaries
    # a:10, b:20, c: 70
    assert a.consumed == pytest.approx(10.0)
    assert b.consumed == pytest.approx(20.0)
    assert c.consumed == pytest.approx(70.0)


def test_late_arrival_slows_existing_job():
    sim = Simulator()
    cpu = FluidShare(sim, speed=100.0)
    first = cpu.submit(work=100.0)

    def spawn_second():
        yield sim.timeout(0.5)
        second = cpu.submit(work=50.0)
        return second

    proc = sim.process(spawn_second())
    sim.run()
    second = proc.value
    # first: 50 done by 0.5, then 50/s -> finishes at 1.5.
    assert first.done.value == pytest.approx(1.5)
    # second: 50 work at 50/s -> also at 1.5.
    assert second.done.value == pytest.approx(1.5)


def test_set_weight_zero_suspends():
    sim = Simulator()
    cpu = FluidShare(sim, speed=100.0)
    job = cpu.submit(work=100.0)

    def controller():
        yield sim.timeout(0.5)  # 50 done
        cpu.set_weight(job, 0.0)
        yield sim.timeout(1.0)  # suspended: no progress
        assert job.consumed == pytest.approx(50.0)
        cpu.set_weight(job, 1.0)

    sim.process(controller())
    sim.run()
    assert job.done.value == pytest.approx(2.0)


def test_set_speed_rescales_rates():
    sim = Simulator()
    cpu = FluidShare(sim, speed=100.0)
    job = cpu.submit(work=100.0)

    def controller():
        yield sim.timeout(0.5)
        cpu.set_speed(50.0)

    sim.process(controller())
    sim.run()
    # 50 done at t=0.5; remaining 50 at 50/s -> t=1.5.
    assert job.done.value == pytest.approx(1.5)


def test_set_cap_mid_flight():
    sim = Simulator()
    cpu = FluidShare(sim, speed=100.0)
    job = cpu.submit(work=100.0)

    def controller():
        yield sim.timeout(0.5)
        cpu.set_cap(job, 10.0)

    sim.process(controller())
    sim.run()
    # 50 done by 0.5; remaining 50 at 10/s -> total 5.5.
    assert job.done.value == pytest.approx(5.5)


def test_zero_work_completes_immediately():
    sim = Simulator()
    cpu = FluidShare(sim, speed=100.0)
    job = cpu.submit(work=0.0)
    sim.run()
    assert job.finished
    assert job.done.value == 0.0


def test_zero_speed_makes_no_progress():
    sim = Simulator()
    cpu = FluidShare(sim, speed=0.0)
    job = cpu.submit(work=10.0)
    sim.run(until=100.0)
    assert not job.finished
    assert job.consumed == 0.0


def test_cancel_fails_done_event():
    sim = Simulator()
    cpu = FluidShare(sim, speed=100.0)
    job = cpu.submit(work=100.0)

    def waiter():
        try:
            yield job.done
        except SimulationError:
            return "cancelled"

    def canceller():
        yield sim.timeout(0.1)
        cpu.cancel(job)

    proc = sim.process(waiter())
    sim.process(canceller())
    sim.run()
    assert proc.value == "cancelled"


def test_consumed_accounting_matches_total_served():
    sim = Simulator()
    cpu = FluidShare(sim, speed=100.0)
    a = cpu.submit(work=30.0)
    b = cpu.submit(work=70.0, weight=2.0)
    sim.run()
    assert cpu.total_served == pytest.approx(100.0)
    assert a.consumed == pytest.approx(30.0)
    assert b.consumed == pytest.approx(70.0)


def test_utilization_snapshot():
    sim = Simulator()
    cpu = FluidShare(sim, speed=100.0)
    snap = cpu.snapshot()
    job = cpu.submit(work=25.0, cap=50.0)

    def observer():
        yield sim.timeout(1.0)
        return cpu.utilization_since(*snap)

    proc = sim.process(observer())
    sim.run(until=1.0)
    sim.run()
    # 25 work at cap 50 takes 0.5s; over the 1s window utilization = 25%.
    assert proc.value == pytest.approx(0.25)
    assert job.finished


def test_validation_errors():
    sim = Simulator()
    with pytest.raises(SimulationError):
        FluidShare(sim, speed=-1.0)
    cpu = FluidShare(sim, speed=10.0)
    with pytest.raises(SimulationError):
        cpu.submit(work=-1.0)
    with pytest.raises(SimulationError):
        cpu.submit(work=1.0, weight=-1.0)
    with pytest.raises(SimulationError):
        cpu.submit(work=1.0, cap=-1.0)
    job = cpu.submit(work=1.0)
    with pytest.raises(SimulationError):
        cpu.set_weight(job, -2.0)
    with pytest.raises(SimulationError):
        cpu.set_cap(job, -2.0)
    with pytest.raises(SimulationError):
        cpu.set_speed(-5.0)


def test_rates_reported_on_jobs():
    sim = Simulator()
    cpu = FluidShare(sim, speed=100.0)
    a = cpu.submit(work=1000.0, weight=1.0)
    b = cpu.submit(work=1000.0, weight=4.0)
    assert a.rate == pytest.approx(20.0)
    assert b.rate == pytest.approx(80.0)


def test_many_jobs_complete_in_expected_order():
    sim = Simulator()
    cpu = FluidShare(sim, speed=100.0)
    jobs = [cpu.submit(work=10.0 * (i + 1)) for i in range(10)]
    sim.run()
    finish_times = [j.done.value for j in jobs]
    assert finish_times == sorted(finish_times)
    assert all(j.finished for j in jobs)
    assert cpu.total_served == pytest.approx(sum(10.0 * (i + 1) for i in range(10)))
