"""Property-based tests for FluidShare invariants (hypothesis)."""


import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.sim import FluidShare, Simulator

work_list = st.lists(
    st.floats(min_value=0.1, max_value=200.0, allow_nan=False),
    min_size=1,
    max_size=8,
)
weight_list = st.lists(
    st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
    min_size=1,
    max_size=8,
)


@given(works=work_list)
@settings(max_examples=60, deadline=None)
def test_work_conservation(works):
    """Total served work equals total submitted work once everything runs."""
    sim = Simulator()
    cpu = FluidShare(sim, speed=100.0)
    jobs = [cpu.submit(w) for w in works]
    sim.run()
    assert all(j.finished for j in jobs)
    assert cpu.total_served == pytest.approx(sum(works), rel=1e-9)
    for job, w in zip(jobs, works):
        assert job.consumed == pytest.approx(w, rel=1e-9)


@given(works=work_list)
@settings(max_examples=60, deadline=None)
def test_makespan_is_total_work_over_speed(works):
    """With no caps the resource is work-conserving: makespan = sum/speed."""
    sim = Simulator()
    speed = 50.0
    cpu = FluidShare(sim, speed=speed)
    jobs = [cpu.submit(w) for w in works]
    sim.run()
    makespan = max(j.done.value for j in jobs)
    assert makespan == pytest.approx(sum(works) / speed, rel=1e-9)


@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_equal_work_finishes_in_weight_order(data):
    """With equal work, higher-weight jobs never finish later."""
    weights = data.draw(weight_list)
    assume(len(weights) >= 2)
    sim = Simulator()
    cpu = FluidShare(sim, speed=100.0)
    jobs = [cpu.submit(100.0, weight=w) for w in weights]
    sim.run()
    finish = [j.done.value for j in jobs]
    for (wa, fa) in zip(weights, finish):
        for (wb, fb) in zip(weights, finish):
            if wa > wb:
                assert fa <= fb + 1e-9


@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_caps_never_exceeded_on_average(data):
    """A capped job's average rate never exceeds its cap."""
    works = data.draw(work_list)
    caps = [
        data.draw(st.floats(min_value=1.0, max_value=120.0, allow_nan=False))
        for _ in works
    ]
    sim = Simulator()
    cpu = FluidShare(sim, speed=100.0)
    jobs = [cpu.submit(w, cap=c) for w, c in zip(works, caps)]
    sim.run()
    for job, w, cap in zip(jobs, works, caps):
        avg_rate = w / job.done.value
        assert avg_rate <= cap * (1 + 1e-9)


@given(works=work_list, speed=st.floats(min_value=1.0, max_value=1000.0))
@settings(max_examples=60, deadline=None)
def test_instantaneous_rates_sum_to_at_most_speed(works, speed):
    sim = Simulator()
    cpu = FluidShare(sim, speed=speed)
    jobs = [cpu.submit(w) for w in works]
    total_rate = sum(j.rate for j in jobs)
    assert total_rate <= speed * (1 + 1e-9)
    # Work-conserving: with uncapped jobs the full speed is used.
    assert total_rate == pytest.approx(speed, rel=1e-9)


@given(
    works=work_list,
    interrupt_at=st.floats(min_value=0.01, max_value=2.0),
)
@settings(max_examples=40, deadline=None)
def test_suspend_resume_conserves_work(works, interrupt_at):
    """Suspending and resuming everything midway loses no work."""
    sim = Simulator()
    cpu = FluidShare(sim, speed=100.0)
    jobs = [cpu.submit(w) for w in works]

    def toggler():
        yield sim.timeout(interrupt_at)
        for j in jobs:
            if not j.finished:
                cpu.set_weight(j, 0.0)
        yield sim.timeout(1.0)
        for j in jobs:
            if not j.finished:
                cpu.set_weight(j, 1.0)

    sim.process(toggler())
    sim.run()
    assert all(j.finished for j in jobs)
    assert cpu.total_served == pytest.approx(sum(works), rel=1e-9)


@given(works=work_list)
@settings(max_examples=40, deadline=None)
def test_consumed_monotone_under_observation(works):
    """Syncing mid-run shows monotonically non-decreasing consumption."""
    sim = Simulator()
    cpu = FluidShare(sim, speed=100.0)
    jobs = [cpu.submit(w) for w in works]
    horizon = sum(works) / 100.0
    last_totals = [0.0] * len(jobs)

    def observer():
        while True:
            yield sim.timeout(horizon / 7)
            cpu.sync()
            for i, job in enumerate(jobs):
                current = job.consumed
                assert current >= last_totals[i] - 1e-12
                last_totals[i] = current

    proc = sim.process(observer())
    sim.run(until=horizon * 1.5)
    assert all(j.finished for j in jobs)
