"""Tests for AggregateFlow: N clients as one lazily-integrated fluid job."""

import pytest

from repro.sim import AggregateFlow, FluidShare, Simulator


def test_single_flow_drains_all_added_work():
    sim = Simulator()
    cpu = FluidShare(sim, speed=100.0)
    flow = AggregateFlow(cpu)
    flow.add(50.0)
    sim.run()
    assert flow.idle
    assert flow.drained() == pytest.approx(50.0)
    assert flow.pending() == 0.0
    assert sim.now == pytest.approx(0.5)


def test_top_up_extends_standing_job_exactly():
    """add() while the job is live folds into it without losing progress."""
    sim = Simulator()
    cpu = FluidShare(sim, speed=100.0)
    flow = AggregateFlow(cpu)
    flow.add(100.0)

    def topper():
        yield sim.timeout(0.5)  # job half done
        flow.add(100.0)

    sim.process(topper())
    sim.run()
    assert flow.drained() == pytest.approx(200.0)
    assert sim.now == pytest.approx(2.0)


def test_resubmit_after_completion_folds_prior_generations():
    sim = Simulator()
    cpu = FluidShare(sim, speed=100.0)
    flow = AggregateFlow(cpu)
    flow.add(30.0)
    sim.run()
    assert flow.idle and flow.drained() == pytest.approx(30.0)
    flow.add(70.0)  # opens a new generation; prior total must carry
    sim.run()
    assert flow.drained() == pytest.approx(100.0)
    assert flow.idle


def test_weighted_flow_squeezes_unit_job_like_n_clients():
    """weight=3 against a unit job splits capacity 75/25."""
    sim = Simulator()
    cpu = FluidShare(sim, speed=100.0)
    flow = AggregateFlow(cpu, weight=3.0)
    flow.add(150.0)
    unit = cpu.submit(work=50.0, weight=1.0)
    sim.run()
    # Both run the whole time: 75/s vs 25/s -> both end at t=2.
    assert unit.done.value == pytest.approx(2.0)
    assert flow.drained() == pytest.approx(150.0)
    assert sim.now == pytest.approx(2.0)


def test_set_rate_caps_service():
    sim = Simulator()
    cpu = FluidShare(sim, speed=100.0)
    flow = AggregateFlow(cpu, cap=20.0)
    flow.add(40.0)
    sim.run()
    assert sim.now == pytest.approx(2.0)
    flow.set_rate(None)
    flow.add(40.0)
    sim.run()
    assert sim.now == pytest.approx(2.4)


def test_drained_is_a_passive_projection():
    """Reading progress mid-run must not perturb completion times."""
    def run(probe: bool):
        sim = Simulator()
        cpu = FluidShare(sim, speed=100.0)
        flow = AggregateFlow(cpu)
        flow.add(100.0)
        contender = cpu.submit(work=100.0)
        reads = []

        def prober():
            while not flow.idle:
                reads.append((sim.now, flow.drained(), flow.pending()))
                yield sim.timeout(0.1)

        if probe:
            sim.process(prober())
        sim.run()
        return flow.drained(), contender.done.value, reads

    drained_plain, done_plain, _ = run(probe=False)
    drained_probed, done_probed, reads = run(probe=True)
    assert drained_probed == drained_plain
    assert done_probed == done_plain
    # The projection itself is exact: equal shares -> 50/s for this flow.
    for t, drained, pending in reads:
        assert drained == pytest.approx(min(50.0 * t, 100.0))
        assert drained + pending == pytest.approx(100.0)


def test_cancel_keeps_served_total():
    sim = Simulator()
    cpu = FluidShare(sim, speed=100.0)
    flow = AggregateFlow(cpu)
    flow.add(100.0)

    def canceller():
        yield sim.timeout(0.25)  # 25 units served
        flow.cancel()

    sim.process(canceller())
    sim.run()
    assert flow.idle
    assert flow.drained() == pytest.approx(25.0)
    assert flow.pending() == 0.0
    # The flow is reusable after a cancel.
    flow.add(10.0)
    sim.run()
    assert flow.drained() == pytest.approx(35.0)


def test_zero_and_negative_add_are_noops():
    sim = Simulator()
    cpu = FluidShare(sim, speed=100.0)
    flow = AggregateFlow(cpu)
    flow.add(0.0)
    flow.add(-5.0)
    assert flow.idle
    sim.run()
    assert flow.drained() == 0.0
