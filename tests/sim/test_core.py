"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import Interrupt, SimulationError, Simulator, Timeout


def test_initial_time_defaults_to_zero():
    assert Simulator().now == 0.0


def test_initial_time_can_be_set():
    assert Simulator(start=5.0).now == 5.0


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(3.5)

    sim.run_process(proc())
    assert sim.now == pytest.approx(3.5)


def test_timeout_carries_value():
    sim = Simulator()

    def proc():
        got = yield sim.timeout(1.0, value="payload")
        return got

    assert sim.run_process(proc()) == "payload"


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    def proc(name, delay):
        yield sim.timeout(delay)
        order.append(name)

    sim.process(proc("late", 2.0))
    sim.process(proc("early", 1.0))
    sim.process(proc("mid", 1.5))
    sim.run()
    assert order == ["early", "mid", "late"]


def test_simultaneous_events_fire_in_schedule_order():
    sim = Simulator()
    order = []

    def proc(name):
        yield sim.timeout(1.0)
        order.append(name)

    for name in "abc":
        sim.process(proc(name))
    sim.run()
    assert order == ["a", "b", "c"]


def test_run_until_stops_clock_at_bound():
    sim = Simulator()

    def proc():
        yield sim.timeout(10.0)

    sim.process(proc())
    sim.run(until=4.0)
    assert sim.now == 4.0
    sim.run()
    assert sim.now == pytest.approx(10.0)


def test_run_until_past_raises():
    sim = Simulator(start=5.0)
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_process_waits_on_manual_event():
    sim = Simulator()
    ev = sim.event()
    seen = []

    def waiter():
        val = yield ev
        seen.append((sim.now, val))

    def firer():
        yield sim.timeout(2.0)
        ev.succeed(42)

    sim.process(waiter())
    sim.process(firer())
    sim.run()
    assert seen == [(2.0, 42)]


def test_event_failure_propagates_into_process():
    sim = Simulator()
    ev = sim.event()

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            return f"caught {exc}"

    def firer():
        yield sim.timeout(1.0)
        ev.fail(ValueError("boom"))

    proc = sim.process(waiter())
    sim.process(firer())
    sim.run()
    assert proc.value == "caught boom"


def test_unhandled_event_failure_crashes_run():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("nobody listens"))
    with pytest.raises(RuntimeError, match="nobody listens"):
        sim.run()


def test_defused_failure_does_not_crash_run():
    sim = Simulator()
    ev = sim.event()
    ev.defused = True
    ev.fail(RuntimeError("quiet"))
    sim.run()  # no raise


def test_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError())


def test_process_return_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        return "done"

    assert sim.run_process(proc()) == "done"


def test_process_exception_propagates_from_run_process():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        raise KeyError("inner")

    with pytest.raises(KeyError):
        sim.run_process(proc())


def test_process_is_event_waitable_by_other_process():
    sim = Simulator()

    def child():
        yield sim.timeout(2.0)
        return 7

    def parent():
        result = yield sim.process(child())
        return result * 3

    assert sim.run_process(parent()) == 21


def test_yield_non_event_is_error():
    sim = Simulator()

    def proc():
        yield 5

    with pytest.raises(SimulationError, match="non-event"):
        sim.run_process(proc())


def test_yield_foreign_event_is_error():
    sim = Simulator()
    other = Simulator()

    def proc():
        yield other.timeout(1.0)

    with pytest.raises(SimulationError, match="another simulator"):
        sim.run_process(proc())


def test_interrupt_thrown_into_waiting_process():
    sim = Simulator()
    seen = {}

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            seen["cause"] = intr.cause
            seen["time"] = sim.now

    def interrupter(target):
        yield sim.timeout(3.0)
        target.interrupt(cause="reconfigure")

    proc = sim.process(sleeper())
    sim.process(interrupter(proc))
    sim.run()
    assert seen == {"cause": "reconfigure", "time": 3.0}


def test_interrupted_process_can_continue():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            pass
        yield sim.timeout(1.0)
        return sim.now

    def interrupter(target):
        yield sim.timeout(2.0)
        target.interrupt()

    proc = sim.process(sleeper())
    sim.process(interrupter(proc))
    sim.run()
    assert proc.value == pytest.approx(3.0)


def test_interrupt_dead_process_rejected():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    proc = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_stale_event_does_not_resume_interrupted_process():
    """After an interrupt, the originally awaited event must not re-resume."""
    sim = Simulator()
    resumes = []

    def sleeper():
        try:
            yield sim.timeout(5.0)
            resumes.append("timeout")
        except Interrupt:
            resumes.append("interrupt")
        yield sim.timeout(10.0)
        resumes.append("second sleep")

    def interrupter(target):
        yield sim.timeout(1.0)
        target.interrupt()

    proc = sim.process(sleeper())
    sim.process(interrupter(proc))
    sim.run()
    assert resumes == ["interrupt", "second sleep"]
    assert sim.now == pytest.approx(11.0)


def test_schedule_callback():
    sim = Simulator()
    fired = []
    sim.schedule_callback(2.5, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [2.5]


def test_stop_halts_run():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        sim.stop()
        yield sim.timeout(1.0)  # pragma: no cover

    sim.process(proc())
    sim.run()
    assert sim.now == 1.0


def test_peek_and_is_idle():
    sim = Simulator()
    assert sim.is_idle()
    assert sim.peek() == float("inf")
    sim.timeout(4.0)
    assert not sim.is_idle()
    assert sim.peek() == 4.0


def test_step_on_empty_schedule_raises():
    with pytest.raises(SimulationError):
        Simulator().step()


def test_run_process_unfinished_raises():
    sim = Simulator()
    ev = sim.event()  # never fires

    def proc():
        yield ev

    with pytest.raises(SimulationError, match="did not finish"):
        sim.run_process(proc())


def test_urgent_events_precede_normal_at_same_time():
    sim = Simulator()
    order = []
    normal = sim.event()
    urgent = sim.event()
    normal.callbacks.append(lambda e: order.append("normal"))
    urgent.callbacks.append(lambda e: order.append("urgent"))
    normal.succeed()
    urgent.succeed(priority=0)
    sim.run()
    assert order == ["urgent", "normal"]


def test_many_processes_scale():
    sim = Simulator()
    done = []

    def proc(i):
        yield sim.timeout(float(i % 17) / 10.0)
        done.append(i)

    for i in range(2000):
        sim.process(proc(i))
    sim.run()
    assert len(done) == 2000


def test_active_process_visible_during_execution():
    sim = Simulator()
    captured = []

    def proc():
        captured.append(sim.active_process)
        yield sim.timeout(1.0)
        captured.append(sim.active_process)

    p = sim.process(proc())
    sim.run()
    assert captured == [p, p]
    assert sim.active_process is None


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_event_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_timeout_chain_accumulates_time():
    sim = Simulator()

    def proc():
        for _ in range(10):
            yield sim.timeout(0.1)
        return sim.now

    assert sim.run_process(proc()) == pytest.approx(1.0)


def test_run_reentrancy_from_process_rejected():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        sim.run()

    sim.process(proc())
    with pytest.raises(SimulationError, match="re-entered"):
        sim.run()


def test_step_reentrancy_from_process_rejected():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        sim.step()

    sim.process(proc())
    with pytest.raises(SimulationError, match="re-entered"):
        sim.run()


def test_urgent_timeout_precedes_normal_at_same_instant():
    from repro.sim import NORMAL, URGENT

    order = []
    sim = Simulator()

    def watcher():
        yield sim.timeout(1.0, priority=URGENT)
        order.append("watcher")

    def worker():
        yield sim.timeout(1.0, priority=NORMAL)
        order.append("worker")

    # Schedule the NORMAL one first: priority must beat FIFO order.
    sim.process(worker())
    sim.process(watcher())
    sim.run()
    assert order == ["watcher", "worker"]


def test_step_hook_observes_every_step():
    seen = []
    sim = Simulator()
    sim.step_hook = lambda t, prio, seq, event: seen.append(
        (t, prio, type(event).__name__)
    )

    def proc():
        yield sim.timeout(1.0)
        yield sim.timeout(2.0)

    sim.process(proc())
    sim.run()
    times = [t for t, _prio, _name in seen]
    assert times == sorted(times)
    assert [name for _t, _prio, name in seen].count("Timeout") == 2
    sim.step_hook = None


# -- tiebreak policy hook --------------------------------------------------


class _DemoteSeqZero:
    """Minimal policy: push the very first enqueue past its tie window."""

    def key(self, time, priority, seq, event):
        return seq + (1 << 60) if seq == 0 else seq


def test_tiebreak_policy_reorders_same_instant_ties():
    order = []
    sim = Simulator(tiebreak=_DemoteSeqZero())
    sim.schedule_callback(1.0, lambda: order.append("a"))  # seq 0, demoted
    sim.schedule_callback(1.0, lambda: order.append("b"))  # seq 1
    sim.run()
    assert order == ["b", "a"]


def test_identity_tiebreak_matches_no_policy():
    class Identity:
        def key(self, time, priority, seq, event):
            return seq

    def drive(sim):
        order = []
        sim.schedule_callback(1.0, lambda: order.append("a"))
        sim.schedule_callback(1.0, lambda: order.append("b"))
        sim.run()
        return order

    assert drive(Simulator()) == drive(Simulator(tiebreak=Identity()))


def test_tiebreak_never_reorders_across_priorities():
    from repro.sim import URGENT

    order = []
    sim = Simulator(tiebreak=_DemoteSeqZero())
    # The demoted event is URGENT: demotion moves it within its own
    # (time, priority) window, never behind a NORMAL event.
    sim.schedule_callback(1.0, lambda: order.append("urgent"), priority=URGENT)
    sim.schedule_callback(1.0, lambda: order.append("normal"))
    sim.run()
    assert order == ["urgent", "normal"]


def test_set_tiebreak_rejects_nonempty_heap():
    sim = Simulator()
    pending = sim.timeout(1.0)
    with pytest.raises(SimulationError):
        sim.set_tiebreak(_DemoteSeqZero())
    assert pending is not None


def test_set_tiebreak_on_fresh_sim_and_property():
    sim = Simulator()
    policy = _DemoteSeqZero()
    sim.set_tiebreak(policy)
    assert sim.tiebreak is policy
    sim.set_tiebreak(None)
    assert sim.tiebreak is None
