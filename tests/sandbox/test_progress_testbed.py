"""Tests for progress estimation, token bucket, and the testbed builder."""

import pytest

from repro.sandbox import (
    DaemonSpec,
    HostSpec,
    LimiterMode,
    LinkSpec,
    ProgressEstimator,
    ResourceLimits,
    Testbed,
    TokenBucket,
)


# -------------------------------------------------------------- progress


def test_progress_needs_two_samples():
    est = ProgressEstimator(window=1.0)
    assert est.rate() is None
    est.record(0.0, 0.0)
    assert est.rate() is None
    est.record(1.0, 10.0)
    assert est.rate() == pytest.approx(10.0)


def test_progress_windowed_average():
    est = ProgressEstimator(window=2.0)
    # Rate 10 for 2 s, then rate 0 for 1 s.
    est.record(0.0, 0.0)
    est.record(2.0, 20.0)
    est.record(3.0, 20.0)
    # Window [1, 3]: 10 units in 2 s -> 5.
    assert est.rate() == pytest.approx(5.0)


def test_progress_fraction():
    est = ProgressEstimator(window=1.0)
    est.record(0.0, 0.0)
    est.record(1.0, 50.0)
    assert est.fraction(100.0) == pytest.approx(0.5)
    assert est.fraction(0.0) is None


def test_progress_trims_old_samples():
    est = ProgressEstimator(window=1.0)
    for i in range(100):
        est.record(i * 0.1, i * 1.0)
    assert est.sample_count <= 13
    assert est.rate() == pytest.approx(10.0)


def test_progress_out_of_order_rejected():
    est = ProgressEstimator(window=1.0)
    est.record(1.0, 0.0)
    with pytest.raises(ValueError):
        est.record(0.5, 1.0)


def test_progress_now_extension_decays_rate():
    est = ProgressEstimator(window=1.0)
    est.record(0.0, 0.0)
    est.record(0.5, 50.0)
    # No progress since t=0.5; by t=1.0 the windowed rate halves.
    assert est.rate(now=1.0) == pytest.approx(50.0)


def test_progress_invalid_window():
    with pytest.raises(ValueError):
        ProgressEstimator(window=0.0)


# ----------------------------------------------------------- token bucket


def test_bucket_burst_passes_immediately():
    tb = TokenBucket(rate=100.0, burst=500.0)
    assert tb.reserve(300.0, now=0.0) == 0.0


def test_bucket_deficit_delays():
    tb = TokenBucket(rate=100.0, burst=100.0)
    assert tb.reserve(100.0, now=0.0) == 0.0
    # Bucket empty; next 50 bytes need 0.5 s of refill.
    assert tb.reserve(50.0, now=0.0) == pytest.approx(0.5)


def test_bucket_refills_over_time():
    tb = TokenBucket(rate=100.0, burst=100.0)
    tb.reserve(100.0, now=0.0)
    assert tb.peek_tokens(1.0) == pytest.approx(100.0)


def test_bucket_oversized_message():
    tb = TokenBucket(rate=100.0, burst=100.0)
    delay = tb.reserve(1000.0, now=0.0)
    assert delay == pytest.approx(9.0)


def test_bucket_long_run_average_rate():
    tb = TokenBucket(rate=100.0, burst=100.0)
    now = 0.0
    for _ in range(50):
        delay = tb.reserve(100.0, now)
        now += delay
    # 5000 bytes (incl. free burst) in `now` seconds -> close to rate.
    assert 5000.0 / now == pytest.approx(100.0, rel=0.05)


def test_bucket_set_rate():
    tb = TokenBucket(rate=100.0, burst=100.0)
    tb.reserve(100.0, now=0.0)
    tb.set_rate(10.0, now=0.0)
    assert tb.reserve(10.0, now=0.0) == pytest.approx(1.0)


def test_bucket_validation():
    with pytest.raises(ValueError):
        TokenBucket(rate=0.0, burst=1.0)
    with pytest.raises(ValueError):
        TokenBucket(rate=1.0, burst=0.0)
    tb = TokenBucket(rate=1.0, burst=1.0)
    with pytest.raises(ValueError):
        tb.reserve(-1.0, now=0.0)
    with pytest.raises(ValueError):
        tb.set_rate(-1.0, now=0.0)


# --------------------------------------------------------------- testbed


def test_testbed_builds_hosts_and_links():
    tb = Testbed(
        host_specs=[HostSpec("client", 450.0), HostSpec("server", 450.0)],
        link_specs=[LinkSpec("client", "server", bandwidth=1e6, latency=0.001)],
    )
    assert set(tb.hosts) == {"client", "server"}
    link = tb.network.link("client", "server")
    assert link.bandwidth == 1e6


def test_testbed_sandbox_applies_limits():
    tb = Testbed(host_specs=[HostSpec("h", 100.0)])
    sb = tb.sandbox("h", ResourceLimits(cpu_share=0.5))

    def app():
        yield sb.compute(50.0)
        return tb.sim.now

    assert tb.sim.run_process(app()) == pytest.approx(1.0)


def test_testbed_daemons_seeded_and_running():
    tb1 = Testbed(
        host_specs=[HostSpec("h", 100.0)],
        daemons=[DaemonSpec("h", mean_interval=0.05, cpu_fraction=0.05)],
        seed=7,
    )
    tb2 = Testbed(
        host_specs=[HostSpec("h", 100.0)],
        daemons=[DaemonSpec("h", mean_interval=0.05, cpu_fraction=0.05)],
        seed=7,
    )
    for tb in (tb1, tb2):
        tb.run(until=5.0)
        tb.shutdown()
    # Same seed -> identical daemon activity.
    assert tb1.daemons[0].total_work_injected == pytest.approx(
        tb2.daemons[0].total_work_injected
    )
    assert tb1.daemons[0].total_work_injected > 0


def test_testbed_quantum_mode_propagates():
    tb = Testbed(host_specs=[HostSpec("h", 100.0)], mode=LimiterMode.QUANTUM)
    sb = tb.sandbox("h", ResourceLimits(cpu_share=0.5))
    assert sb.mode == LimiterMode.QUANTUM
