"""Property-based tests for sandbox resource enforcement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Host
from repro.sandbox import LimiterMode, ResourceLimits, Sandbox, TokenBucket
from repro.sim import Simulator


@given(share=st.floats(min_value=0.05, max_value=1.0))
@settings(max_examples=30, deadline=None)
def test_ideal_limiter_exact_for_any_share(share):
    """Ideal mode: elapsed = work / (speed * share), any share."""
    sim = Simulator()
    host = Host(sim, "h", cpu_speed=100.0)
    sandbox = Sandbox(host, ResourceLimits(cpu_share=share))

    def app():
        yield sandbox.compute(50.0)
        return sim.now

    elapsed = sim.run_process(app())
    assert elapsed == pytest.approx(50.0 / (100.0 * share), rel=1e-9)


@given(share=st.floats(min_value=0.1, max_value=0.9))
@settings(max_examples=15, deadline=None)
def test_quantum_limiter_tracks_any_share(share):
    """Quantum mode: long-run average within 5% of the target share."""
    sim = Simulator()
    host = Host(sim, "h", cpu_speed=100.0)
    sandbox = Sandbox(
        host, ResourceLimits(cpu_share=share), mode=LimiterMode.QUANTUM
    )

    def app():
        # Enough work for ~10s at the target share.
        yield sandbox.compute(100.0 * share * 10.0)
        return sim.now

    elapsed = sim.run_process(app())
    assert elapsed == pytest.approx(10.0, rel=0.05)


@given(
    share_a=st.floats(min_value=0.1, max_value=0.45),
    share_b=st.floats(min_value=0.1, max_value=0.45),
)
@settings(max_examples=25, deadline=None)
def test_colocated_sandboxes_isolated_for_any_share_split(share_a, share_b):
    """Two reservations never interfere (Section 6.2), any split <= 0.9."""
    sim = Simulator()
    host = Host(sim, "h", cpu_speed=100.0)
    sa = Sandbox(host, ResourceLimits(cpu_share=share_a), name="a")
    sb = Sandbox(host, ResourceLimits(cpu_share=share_b), name="b")
    done = {}

    def app(tag, sandbox, share):
        yield sandbox.compute(100.0 * share)  # sized for exactly 1 s alone
        done[tag] = sim.now

    sim.process(app("a", sa, share_a))
    sim.process(app("b", sb, share_b))
    sim.run()
    assert done["a"] == pytest.approx(1.0, rel=1e-9)
    assert done["b"] == pytest.approx(1.0, rel=1e-9)


@given(
    rate=st.floats(min_value=10.0, max_value=1e6),
    sizes=st.lists(
        st.floats(min_value=1.0, max_value=5e4), min_size=5, max_size=30
    ),
)
@settings(max_examples=40, deadline=None)
def test_token_bucket_long_run_rate_never_exceeded(rate, sizes):
    """Served bytes over elapsed time never beat rate (plus initial burst)."""
    burst = rate * 0.01 + 1.0
    bucket = TokenBucket(rate=rate, burst=burst)
    now = 0.0
    total = 0.0
    for size in sizes:
        delay = bucket.reserve(size, now)
        now += delay
        total += size
    if now > 0:
        assert total <= rate * now + burst * (1 + 1e-9)


@given(work_chunks=st.lists(st.floats(min_value=0.1, max_value=20.0), min_size=1, max_size=20))
@settings(max_examples=40, deadline=None)
def test_cpu_accounting_sums_chunks(work_chunks):
    """cpu_consumed equals the sum of all completed compute requests."""
    sim = Simulator()
    host = Host(sim, "h", cpu_speed=100.0)
    sandbox = Sandbox(host)

    def app():
        for w in work_chunks:
            yield sandbox.compute(w)

    sim.run_process(app())
    assert sandbox.cpu_consumed() == pytest.approx(sum(work_chunks), rel=1e-9)


@given(
    shares=st.lists(st.floats(min_value=0.1, max_value=0.8), min_size=2, max_size=3),
)
@settings(max_examples=20, deadline=None)
def test_limit_changes_preserve_total_work(shares):
    """Changing the share mid-run neither loses nor duplicates work."""
    sim = Simulator()
    host = Host(sim, "h", cpu_speed=100.0)
    sandbox = Sandbox(host, ResourceLimits(cpu_share=shares[0]))
    total_work = 60.0

    def app():
        yield sandbox.compute(total_work)

    def varier():
        for share in shares[1:]:
            yield sim.timeout(0.2)
            sandbox.set_limits(ResourceLimits(cpu_share=share))

    sim.process(varier())
    sim.run_process(app())
    assert sandbox.cpu_consumed() == pytest.approx(total_work, rel=1e-9)
