"""Tests for the sandbox (virtual execution environment)."""

import pytest

from repro.cluster import Host, Network
from repro.sandbox import LimiterMode, ResourceLimits, Sandbox
from repro.sim import Simulator


def make_host(sim, speed=100.0, pages=1000):
    return Host(sim, "h", cpu_speed=speed, mem_pages=pages)


# ----------------------------------------------------------- CPU, ideal


def test_unlimited_compute_runs_at_full_speed():
    sim = Simulator()
    sb = Sandbox(make_host(sim))

    def app():
        yield sb.compute(100.0)
        return sim.now

    assert sim.run_process(app()) == pytest.approx(1.0)


def test_ideal_cpu_share_caps_rate():
    sim = Simulator()
    sb = Sandbox(make_host(sim), ResourceLimits(cpu_share=0.25))

    def app():
        yield sb.compute(100.0)
        return sim.now

    # 100 work at 25 units/s -> 4 s.
    assert sim.run_process(app()) == pytest.approx(4.0)


def test_ideal_share_change_mid_compute():
    sim = Simulator()
    sb = Sandbox(make_host(sim), ResourceLimits(cpu_share=1.0))

    def controller():
        yield sim.timeout(0.5)
        sb.set_limits(ResourceLimits(cpu_share=0.1))

    def app():
        yield sb.compute(100.0)
        return sim.now

    sim.process(controller())
    # 50 work in 0.5s, remaining 50 at 10/s -> 0.5 + 5.0.
    assert sim.run_process(app()) == pytest.approx(5.5)


def test_compute_requests_serialized():
    sim = Simulator()
    sb = Sandbox(make_host(sim))
    finish = []

    def submitter(tag, work):
        yield sb.compute(work)
        finish.append((tag, sim.now))

    sim.process(submitter("first", 50.0))
    sim.process(submitter("second", 50.0))
    sim.run()
    # Serialized: 0.5 then 1.0 (no fluid sharing between own requests).
    assert finish == [("first", 0.5), ("second", 1.0)]


def test_cpu_consumed_accounting():
    sim = Simulator()
    sb = Sandbox(make_host(sim))

    def app():
        yield sb.compute(30.0)
        yield sb.compute(20.0)

    sim.run_process(app())
    assert sb.cpu_consumed() == pytest.approx(50.0)


def test_runnable_time_excludes_waits():
    sim = Simulator()
    sb = Sandbox(make_host(sim))

    def app():
        yield sb.compute(50.0)  # 0.5 s runnable
        yield sb.sleep(2.0)     # waiting, not runnable
        yield sb.compute(50.0)  # 0.5 s runnable

    sim.run_process(app())
    assert sb.runnable_time() == pytest.approx(1.0)


def test_two_sandboxes_on_one_host_isolated_by_caps():
    """Section 6.2: co-located sandboxes each get exactly their reservation."""
    sim = Simulator()
    host = make_host(sim, speed=100.0)
    a = Sandbox(host, ResourceLimits(cpu_share=0.3), name="a")
    b = Sandbox(host, ResourceLimits(cpu_share=0.3), name="b")
    done = {}

    def app(sb, tag):
        yield sb.compute(30.0)
        done[tag] = sim.now

    sim.process(app(a, "a"))
    sim.process(app(b, "b"))
    sim.run()
    # Each gets 30 units/s regardless of the other -> both at t=1.0.
    assert done["a"] == pytest.approx(1.0)
    assert done["b"] == pytest.approx(1.0)


# -------------------------------------------------------- CPU, quantum


def test_quantum_mode_tracks_average_share():
    sim = Simulator()
    sb = Sandbox(
        make_host(sim),
        ResourceLimits(cpu_share=0.4),
        mode=LimiterMode.QUANTUM,
    )

    def app():
        yield sb.compute(40.0)
        return sim.now

    elapsed = sim.run_process(app())
    # 40 work at ~40 units/s average -> ~1s, within quantum jitter.
    assert elapsed == pytest.approx(1.0, rel=0.1)


def test_quantum_mode_usage_sawtooth_hits_target_on_average():
    sim = Simulator()
    sb = Sandbox(
        make_host(sim),
        ResourceLimits(cpu_share=0.6),
        mode=LimiterMode.QUANTUM,
    )
    sb.trace_usage = True

    def app():
        yield sb.compute(1000.0)

    sim.process(app())
    sim.run(until=10.0)
    samples = [u for (t, u) in sb.usage_trace if t > 0.5]
    assert samples, "controller produced no usage samples"
    mean_usage = sum(samples) / len(samples)
    assert mean_usage == pytest.approx(0.6, abs=0.05)
    # The mechanism is on/off: instantaneous usage toggles between ~0 and ~1.
    assert max(samples) > 0.9
    assert min(samples) < 0.1


def test_quantum_share_change_takes_effect():
    sim = Simulator()
    sb = Sandbox(
        make_host(sim),
        ResourceLimits(cpu_share=0.8),
        mode=LimiterMode.QUANTUM,
    )
    sb.trace_usage = True

    def app():
        yield sb.compute(10000.0)

    def controller():
        yield sim.timeout(5.0)
        sb.set_limits(ResourceLimits(cpu_share=0.2))

    sim.process(app())
    sim.process(controller())
    sim.run(until=10.0)
    early = [u for (t, u) in sb.usage_trace if 1.0 < t < 5.0]
    late = [u for (t, u) in sb.usage_trace if 6.0 < t < 10.0]
    assert sum(early) / len(early) == pytest.approx(0.8, abs=0.05)
    assert sum(late) / len(late) == pytest.approx(0.2, abs=0.05)


def test_achieved_share_estimate_in_quantum_mode():
    sim = Simulator()
    sb = Sandbox(
        make_host(sim),
        ResourceLimits(cpu_share=0.5),
        mode=LimiterMode.QUANTUM,
        usage_window=0.5,
    )

    def app():
        yield sb.compute(10000.0)

    sim.process(app())
    sim.run(until=3.0)
    assert sb.achieved_share() == pytest.approx(0.5, abs=0.07)


# --------------------------------------------------------------- network


def make_networked_pair(sim, bandwidth=1000.0, **kw):
    net = Network(sim)
    a = Host(sim, "a", cpu_speed=100.0)
    b = Host(sim, "b", cpu_speed=100.0)
    net.register(a)
    net.register(b)
    net.connect("a", "b", bandwidth=bandwidth)
    return a, b


def test_send_unlimited_uses_link_rate():
    sim = Simulator()
    a, b = make_networked_pair(sim, bandwidth=1000.0)
    sb = Sandbox(a)

    def app():
        msg = yield sb.send("b", "p", None, size=500.0)
        return (sim.now, msg.size)

    assert sim.run_process(app()) == (pytest.approx(0.5), 500.0)


def test_send_with_ideal_bw_cap():
    sim = Simulator()
    a, b = make_networked_pair(sim, bandwidth=1000.0)
    sb = Sandbox(a, ResourceLimits(net_bw=100.0))

    def app():
        yield sb.send("b", "p", None, size=500.0)
        return sim.now

    # Flow capped at 100 B/s -> 5 s.
    assert sim.run_process(app()) == pytest.approx(5.0)


def test_send_with_token_bucket_average_rate():
    sim = Simulator()
    a, b = make_networked_pair(sim, bandwidth=1e6)
    sb = Sandbox(a, ResourceLimits(net_bw=1000.0), mode=LimiterMode.QUANTUM)

    def app():
        for _ in range(10):
            yield sb.send("b", "p", None, size=1000.0)
        return sim.now

    elapsed = sim.run_process(app())
    # 10 kB at ~1 kB/s -> about 10 s (token bucket pacing dominates the
    # fast link).
    assert elapsed == pytest.approx(10.0, rel=0.15)
    assert sb.bytes_sent == 10000.0


def test_recv_delivers_and_accounts():
    sim = Simulator()
    a, b = make_networked_pair(sim)
    sa = Sandbox(a)
    sb_ = Sandbox(b)

    def sender():
        yield sa.send("b", "req", "hello", size=100.0)

    def receiver():
        msg = yield sb_.recv("req")
        return msg.payload

    sim.process(sender())
    proc = sim.process(receiver())
    sim.run()
    assert proc.value == "hello"
    assert sb_.bytes_received == 100.0


# ---------------------------------------------------------------- memory


def test_memory_faults_cost_time():
    sim = Simulator()
    sb = Sandbox(
        make_host(sim),
        ResourceLimits(mem_pages=10),
        fault_cost=0.01,
    )

    def app():
        pages = sb.alloc_pages(10)
        faults = yield sb.touch_pages(pages)
        return (faults, sim.now)

    faults, t = sim.run_process(app())
    assert faults == 10
    assert t == pytest.approx(0.1)


def test_memory_thrash_when_working_set_exceeds_limit():
    sim = Simulator()
    sb = Sandbox(
        make_host(sim),
        ResourceLimits(mem_pages=5),
        fault_cost=0.01,
    )

    def app():
        pages = sb.alloc_pages(10)
        total = 0
        for _ in range(3):
            total += yield sb.touch_pages(pages)
        return total

    # LRU + sequential sweep over 2x working set: every touch faults.
    assert sim.run_process(app()) == 30


def test_memory_reservation_released_on_close():
    sim = Simulator()
    host = make_host(sim, pages=100)
    sb = Sandbox(host, ResourceLimits(mem_pages=80))
    assert host.memory.free_pages == 20
    sb.close()
    assert host.memory.free_pages == 100


# ------------------------------------------------------------- validation


def test_limits_validation():
    with pytest.raises(ValueError):
        ResourceLimits(cpu_share=0.0)
    with pytest.raises(ValueError):
        ResourceLimits(cpu_share=1.5)
    with pytest.raises(ValueError):
        ResourceLimits(mem_pages=0)
    with pytest.raises(ValueError):
        ResourceLimits(net_bw=-1.0)


def test_limits_with_update():
    limits = ResourceLimits(cpu_share=0.5, net_bw=100.0)
    updated = limits.with_(cpu_share=0.9)
    assert updated.cpu_share == 0.9
    assert updated.net_bw == 100.0
    assert limits.cpu_share == 0.5  # original unchanged


def test_unknown_mode_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Sandbox(make_host(sim), mode="bogus")
