"""Integration: the complete pipeline through the public API only.

annotations -> preprocessor -> autoprofile (testbed measurements,
sensitivity refinement, pruning) -> JSON persistence -> scheduler ->
adaptive execution with monitoring + steering.  This mirrors the paper's
Figure 1 data flow end to end.
"""

import pytest

from repro.profiling import (
    PerformanceDatabase,
    ResourceDimension,
    ResourcePoint,
    autoprofile,
)
from repro.runtime import (
    AdaptationController,
    Objective,
    ResourceScheduler,
    UserPreference,
)
from repro.sandbox import ResourceLimits, Testbed
from repro.tunable import (
    ConfigSpace,
    ControlParameter,
    ExecutionEnv,
    HostComponent,
    LinkComponent,
    MetricRange,
    Preprocessor,
    QoSMetric,
    TaskGraph,
    TaskSpec,
    TransitionSpec,
    TunableApp,
)

# A small client/server "report generator": the client requests batches,
# the server renders them; `batch` trades per-batch latency against total
# time, `detail` trades output quality against CPU.

BATCH_ITEMS = 400
ITEM_BYTES = {1: 2_000.0, 2: 8_000.0}
ITEM_WORK = {1: 0.3, 2: 1.2}


def make_app():
    space = ConfigSpace(
        [
            ControlParameter("batch", (5, 20)),
            ControlParameter("detail", (1, 2)),
        ]
    )
    env = ExecutionEnv(
        [HostComponent("client", cpu_speed=100.0), HostComponent("server", cpu_speed=100.0)],
        [LinkComponent("client", "server", bandwidth=1e6, latency=0.001)],
    )
    metrics = [
        QoSMetric("total_time", better="lower", unit="s"),
        QoSMetric("batch_latency", better="lower", unit="s"),
        QoSMetric("detail_level", better="higher"),
    ]
    tasks = TaskGraph(
        [
            TaskSpec(
                "generate",
                params=("batch", "detail"),
                resources=("client.cpu", "client.network", "server.cpu"),
                metrics=("total_time", "batch_latency", "detail_level"),
            )
        ]
    )
    notified = []

    def notify_server(rt, old, new):
        if old["detail"] != new["detail"]:
            notified.append((old["detail"], new["detail"]))
            yield rt.sandbox("client").send("server", "ctl", dict(new), size=32.0)

    def launcher(rt):
        def server():
            sb = rt.sandbox("server")
            while True:
                msg = yield sb.recv("req")
                if msg.payload is None:
                    return
                count, detail = msg.payload
                yield sb.compute(ITEM_WORK[detail] * count)
                yield sb.send(
                    "client", "data", None, size=ITEM_BYTES[detail] * count
                )

        def client():
            sb = rt.sandbox("client")
            start = rt.sim.now
            done = 0
            while done < BATCH_ITEMS:
                yield from rt.controls.apply(rt, rt.sim.now)
                batch = min(rt.config.batch, BATCH_ITEMS - done)
                detail = rt.config.detail
                t0 = rt.sim.now
                yield sb.send("server", "req", (batch, detail), size=64.0)
                yield sb.recv("data")
                yield sb.compute(0.1 * batch)
                rt.qos.running_avg("batch_latency", rt.sim.now - t0, time=rt.sim.now)
                done += batch
            rt.qos.update("total_time", rt.sim.now - start, time=rt.sim.now)
            rt.qos.update("detail_level", float(rt.config.detail), time=rt.sim.now)
            yield sb.send("server", "req", None, size=16.0)

        rt.sim.process(server())
        return rt.sim.process(client())

    app = TunableApp(
        "reportgen", space, env, metrics, tasks,
        transitions=(TransitionSpec(handler=notify_server, name="notify"),),
        launcher=launcher,
    )
    return app, notified


DIMS = [
    ResourceDimension("client.cpu", (0.2, 0.6, 1.0), lo=0.01, hi=1.0),
    ResourceDimension("client.network", (50e3, 1e6), lo=1.0),
]


@pytest.fixture(scope="module")
def modeled():
    app, notified = make_app()
    report = autoprofile(app, DIMS, adaptive_rounds=1, per_round=4)
    return app, notified, report


def test_preprocessor_artifacts_consistent(modeled):
    app, _, report = modeled
    pre = Preprocessor(app)
    cf = pre.config_file()
    assert len(cf.configurations) == 4
    tpl = pre.database_template()
    assert set(tpl.param_names) == {"batch", "detail"}
    assert set(report.database.configurations()) == set(cf.configurations)


def test_database_persistence_roundtrip(modeled, tmp_path):
    _, _, report = modeled
    path = tmp_path / "reportgen.json"
    report.database.save(path)
    loaded = PerformanceDatabase.load(path)
    point = ResourcePoint({"client.cpu": 0.6, "client.network": 1e6})
    for config in report.database.configurations():
        assert loaded.predict(config, point) == pytest.approx(
            report.database.predict(config, point), rel=1e-12
        )


def test_scheduler_trades_detail_for_deadline(modeled):
    _, _, report = modeled
    pref = UserPreference.single(
        Objective("detail_level", "maximize"),
        [MetricRange("total_time", hi=60.0)],
    )
    sched = ResourceScheduler(report.database, pref)
    rich = sched.select(ResourcePoint({"client.cpu": 1.0, "client.network": 1e6}))
    poor = sched.select(ResourcePoint({"client.cpu": 1.0, "client.network": 50e3}))
    assert rich.config.detail == 2
    assert poor.config.detail == 1


def test_adaptive_run_switches_and_notifies_server(modeled):
    app, notified, report = modeled
    notified.clear()
    pref = UserPreference.single(
        Objective("detail_level", "maximize"),
        [MetricRange("total_time", hi=60.0)],
    )
    sched = ResourceScheduler(report.database, pref)
    controller = AdaptationController(
        sched,
        monitoring_plan=Preprocessor(app).monitoring_plan(),
        monitor_kwargs={"window": 1.0, "cooldown": 2.0},
    )
    decision = controller.select_initial(
        ResourcePoint({"client.cpu": 1.0, "client.network": 1e6})
    )
    assert decision.config.detail == 2

    testbed = Testbed(host_specs=app.env.host_specs(), link_specs=app.env.link_specs())
    rt = app.instantiate(
        testbed, decision.config,
        limits={"client": ResourceLimits(net_bw=1e6)},
    )
    controller.attach(rt)

    def vary():
        yield testbed.sim.timeout(3.0)
        rt.sandboxes["client"].set_limits(ResourceLimits(net_bw=50e3))

    testbed.sim.process(vary())
    testbed.run(until=600)
    assert rt.finished.triggered
    # Adaptation downgraded detail, and the transition told the server.
    assert rt.controls.current.detail == 1
    assert (2, 1) in notified
    assert rt.qos.get("total_time") is not None
