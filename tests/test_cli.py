"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import CANONICAL, TARGETS, main


def test_list_targets(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out.splitlines()
    assert out == CANONICAL


def test_all_canonical_targets_resolvable():
    for name in CANONICAL:
        assert name in TARGETS


def test_aliases_share_runner():
    assert TARGETS["exp1"] is TARGETS["fig7a"]
    assert TARGETS["exp3"] is TARGETS["fig7cd"]
    assert TARGETS["fig5a"] is TARGETS["fig5"]


def test_unknown_target_errors():
    with pytest.raises(SystemExit):
        main(["figZZ"])


def test_run_single_figure_to_dir(tmp_path, capsys):
    assert main(["fig3a", "--no-plot", "--out", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "Fig 3a" in out
    txt = tmp_path / "fig3a.txt"
    js = tmp_path / "fig3a.json"
    assert txt.exists() and js.exists()
    payload = json.loads(js.read_text())
    assert payload["figure"] == "Fig 3a"
    assert "measured" in payload["series"]


def test_run_ablation_table(tmp_path, capsys):
    assert main(["ablation-a5", "--out", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "worst_deviation" in out
    data = json.loads((tmp_path / "ablation-a5.json").read_text())
    assert data["worst_deviation"] < 0.01


def test_duplicate_aliases_run_once(capsys):
    assert main(["fig5a", "fig5b", "--no-plot"]) == 0
    out = capsys.readouterr().out
    # fig5a and fig5b share a runner producing both figures; dedup means
    # each figure header appears exactly once.
    assert out.count("== Fig 5a:") == 1
    assert out.count("== Fig 5b:") == 1
