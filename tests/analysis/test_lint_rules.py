"""Fixture tests: one positive and one negative case per lint rule id."""

import textwrap

from repro.analysis import lint_source


def rules_of(source, path="pkg/mod.py"):
    return {f.rule for f in lint_source(textwrap.dedent(source), path)}


# -- DET101: wall-clock reads ---------------------------------------------


def test_det101_flags_wallclock_read():
    assert "DET101" in rules_of(
        """
        import time

        def stamp():
            return time.time()
        """
    )


def test_det101_resolves_import_aliases():
    assert "DET101" in rules_of(
        """
        from time import perf_counter as tick

        def stamp():
            return tick()
        """
    )


def test_det101_ignores_virtual_clock():
    assert "DET101" not in rules_of(
        """
        def stamp(sim):
            return sim.now
        """
    )


# -- DET102: OS entropy ---------------------------------------------------


def test_det102_flags_os_entropy():
    assert "DET102" in rules_of(
        """
        import os

        def token():
            return os.urandom(8)
        """
    )


def test_det102_ignores_seeded_stream():
    assert "DET102" not in rules_of(
        """
        from repro.sim.rng import stream

        def token(seed):
            return stream(seed, "token").integers(0, 256, size=8)
        """
    )


# -- DET103: global/unseeded RNG ------------------------------------------


def test_det103_flags_global_random_module():
    assert "DET103" in rules_of(
        """
        import random

        def pick(xs):
            return random.choice(xs)
        """
    )


def test_det103_flags_direct_numpy_generator():
    assert "DET103" in rules_of(
        """
        import numpy

        def gen():
            return numpy.random.default_rng(0)
        """
    )


def test_det103_exempts_rng_home_module():
    source = """
        import numpy

        def make(seed):
            return numpy.random.default_rng(seed)
        """
    assert "DET103" not in rules_of(source, path="src/repro/sim/rng.py")


def test_det103_ignores_passed_in_generator():
    assert "DET103" not in rules_of(
        """
        def jitter(rng):
            return rng.normal(0.0, 1.0)
        """
    )


# -- DET201: unordered set iteration --------------------------------------


def test_det201_flags_set_iteration():
    assert "DET201" in rules_of(
        """
        def fan_out(send):
            peers = {"a", "b", "c"}
            for peer in peers:
                send(peer)
        """
    )


def test_det201_ignores_sorted_set_iteration():
    assert "DET201" not in rules_of(
        """
        def fan_out(send):
            peers = {"a", "b", "c"}
            for peer in sorted(peers):
                send(peer)
        """
    )


def test_det201_flags_set_comprehension_iteration():
    assert "DET201" in rules_of(
        """
        def labels(hosts):
            return [h.name for h in set(hosts)]
        """
    )


# -- DET202: filesystem enumeration ---------------------------------------


def test_det202_flags_unsorted_listdir():
    assert "DET202" in rules_of(
        """
        import os

        def entries(path):
            return os.listdir(path)
        """
    )


def test_det202_flags_pathlib_glob():
    assert "DET202" in rules_of(
        """
        def entries(path):
            return list(path.glob("*.json"))
        """
    )


def test_det202_ignores_sorted_enumeration():
    assert "DET202" not in rules_of(
        """
        import os

        def entries(path):
            return sorted(os.listdir(path))
        """
    )


# -- DET203: dict-view iteration into an ordering sink --------------------


def test_det203_flags_dict_view_feeding_sink():
    assert "DET203" in rules_of(
        """
        def publish(table, bus):
            for key, value in table.items():
                bus.put((key, value))
        """
    )


def test_det203_ignores_dict_view_without_sink():
    assert "DET203" not in rules_of(
        """
        def total(table):
            acc = 0
            for key, value in table.items():
                acc += value
            return acc
        """
    )


def test_det203_ignores_sorted_dict_view():
    assert "DET203" not in rules_of(
        """
        def publish(table, bus):
            for key, value in sorted(table.items()):
                bus.put((key, value))
        """
    )


# -- DET301: id()/hash() ordering -----------------------------------------


def test_det301_flags_sort_keyed_on_id():
    assert "DET301" in rules_of(
        """
        def order(events):
            return sorted(events, key=id)
        """
    )


def test_det301_flags_id_comparison():
    assert "DET301" in rules_of(
        """
        def before(a, b):
            return id(a) < id(b)
        """
    )


def test_det301_ignores_stable_sort_key():
    assert "DET301" not in rules_of(
        """
        def order(events):
            return sorted(events, key=lambda e: e.seq)
        """
    )


# -- DET401: environment-variable branches --------------------------------


def test_det401_flags_environ_branch():
    assert "DET401" in rules_of(
        """
        import os

        def mode():
            if os.environ.get("REPRO_FAST"):
                return "fast"
            return "full"
        """
    )


def test_det401_flags_getenv_branch():
    assert "DET401" in rules_of(
        """
        import os

        def mode():
            return "fast" if os.getenv("REPRO_FAST") else "full"
        """
    )


def test_det401_ignores_explicit_parameter():
    assert "DET401" not in rules_of(
        """
        def mode(fast):
            if fast:
                return "fast"
            return "full"
        """
    )


# -- SIM101: non-event yields ---------------------------------------------


def test_sim101_flags_literal_yield_in_process():
    assert "SIM101" in rules_of(
        """
        def proc(sim):
            yield sim.timeout(1.0)
            yield 42
        """
    )


def test_sim101_ignores_event_only_process():
    assert "SIM101" not in rules_of(
        """
        def proc(sim, store):
            yield sim.timeout(1.0)
            item = yield store.get()
            return item
        """
    )


def test_sim101_ignores_plain_data_generators():
    # A generator that never yields events is not a sim process.
    assert "SIM101" not in rules_of(
        """
        def squares(n):
            for i in range(n):
                yield i * i
        """
    )


# -- SIM102: leaked events ------------------------------------------------


def test_sim102_flags_discarded_timeout():
    assert "SIM102" in rules_of(
        """
        def proc(sim):
            sim.timeout(1.0)
            yield sim.timeout(2.0)
        """
    )


def test_sim102_ignores_bound_and_fireandforget():
    assert "SIM102" not in rules_of(
        """
        def proc(sim, store):
            wake = sim.timeout(1.0)
            store.put("msg")
            yield wake
        """
    )


# -- SIM103: double trigger -----------------------------------------------


def test_sim103_flags_double_succeed():
    assert "SIM103" in rules_of(
        """
        def settle(done):
            done.succeed(1)
            done.succeed(2)
        """
    )


def test_sim103_ignores_distinct_events():
    assert "SIM103" not in rules_of(
        """
        def settle(first, second):
            first.succeed(1)
            second.fail(RuntimeError("boom"))
        """
    )


# -- SIM104: kernel re-entrancy -------------------------------------------


def test_sim104_flags_run_inside_process():
    assert "SIM104" in rules_of(
        """
        def proc(sim):
            yield sim.timeout(1.0)
            sim.run(until=5.0)
        """
    )


def test_sim104_ignores_driver_code():
    assert "SIM104" not in rules_of(
        """
        def drive(sim):
            sim.process(worker(sim))
            sim.run(until=5.0)
        """
    )


# -- OBS101: print() inside simulation code -------------------------------


def test_obs101_flags_print_in_gated_code():
    assert "OBS101" in rules_of(
        """
        def notify(sim):
            print("violation!")
        """,
        path="src/repro/runtime/monitor.py",
    )


def test_obs101_ignores_print_outside_gated_dirs():
    assert "OBS101" not in rules_of(
        """
        def render(result):
            print(result)
        """,
        path="src/repro/experiments/fig3.py",
    )


# -- OBS102: leaked spans --------------------------------------------------


def test_obs102_flags_discarded_begin():
    assert "OBS102" in rules_of(
        """
        def handle(obs, work):
            obs.begin("handle", cat="app")
            work()
        """
    )


def test_obs102_flags_never_referenced_span_id():
    assert "OBS102" in rules_of(
        """
        def handle(obs, work):
            sid = obs.begin("handle", cat="app")
            work()
        """
    )


def test_obs102_flags_discarded_begin_in_except_handler():
    assert "OBS102" in rules_of(
        """
        def handle(obs, work):
            try:
                work()
            except ValueError:
                obs.begin("recover", cat="app")
        """
    )


def test_obs102_ignores_span_passed_to_end():
    assert "OBS102" not in rules_of(
        """
        def handle(obs, work):
            sid = obs.begin("handle", cat="app")
            try:
                work()
            finally:
                obs.end(sid)
        """
    )


def test_obs102_ignores_span_stored_on_attribute():
    assert "OBS102" not in rules_of(
        """
        def handle(obs, message):
            message.span = obs.begin("deliver", cat="app")
        """
    )


def test_obs102_ignores_span_captured_by_closure():
    assert "OBS102" not in rules_of(
        """
        def handle(obs):
            sid = obs.begin("handle", cat="app")

            def finish(ok):
                obs.end(sid, ok=ok)

            return finish
        """
    )


# -- OBS103: unannotated wall-clock reads in kernel code -------------------


def test_obs103_flags_bare_wallclock_in_gated_code():
    assert "OBS103" in rules_of(
        """
        from time import perf_counter

        def window():
            return perf_counter()
        """,
        path="src/repro/sim/core.py",
    )


def test_obs103_ignores_wallclock_outside_gated_dirs():
    # The profiler (repro/obs) and experiments read host clocks too; only
    # the kernel/runtime/faults dirs demand the visible justification.
    assert "OBS103" not in rules_of(
        """
        from time import perf_counter

        def window():
            return perf_counter()
        """,
        path="src/repro/obs/perf.py",
    )


def test_obs103_satisfied_by_det101_telemetry_annotation():
    # The established convention annotates the read as host-side
    # telemetry via allow[DET101]; that same annotation satisfies OBS103
    # (no stacked double-allow needed).
    source = """
        import time

        def window():
            return time.perf_counter()  # repro: allow[DET101] -- host-side profiler telemetry
        """
    found = rules_of(source, path="src/repro/runtime/launcher.py")
    assert "OBS103" not in found
    assert "DET101" not in found


def test_obs103_flags_virtual_clock_never():
    assert "OBS103" not in rules_of(
        """
        def window(sim):
            return sim.now
        """,
        path="src/repro/faults/inject.py",
    )


# -- OBS104: mutating calls inside read-only inspectors --------------------


def test_obs104_flags_mutating_call_in_inspector_class():
    assert "OBS104" in rules_of(
        """
        class ScenarioInspector:
            def shares(self):
                self._scene.testbed.hosts["client"].cpu.share.set_speed(0.5)
        """,
        path="src/repro/obs/interactive.py",
    )


def test_obs104_flags_schedule_prefix_by_name():
    assert "OBS104" in rules_of(
        """
        class QueueInspector:
            def poke(self, sim):
                sim.schedule_callback(0.0, lambda: None)
        """,
        path="src/repro/obs/interactive.py",
    )


def test_obs104_flags_fluid_sync_and_scheduler_select():
    found = rules_of(
        """
        class ShareInspector:
            def shares(self, share):
                return share.sync()

            def decision(self, scheduler, estimates):
                return scheduler.select(estimates)
        """,
        path="src/repro/obs/interactive.py",
    )
    assert "OBS104" in found


def test_obs104_ignores_passive_reads_in_inspector():
    assert "OBS104" not in rules_of(
        """
        class ScenarioInspector:
            def shares(self, share):
                return share.peek()

            def monitor(self, agent):
                return dict(agent.estimates())

            def supervision(self, supervisor, now):
                return supervisor.summary(now)
        """,
        path="src/repro/obs/interactive.py",
    )


def test_obs104_ignores_mutations_outside_inspector_classes():
    # Interventions on the context itself are the sanctioned mutation
    # surface; only *Inspector* classes carry the read-only contract.
    assert "OBS104" not in rules_of(
        """
        class InteractiveContext:
            def perturb(self, sandbox, limits):
                sandbox.set_limits(limits)
        """,
        path="src/repro/obs/interactive.py",
    )


def test_obs104_gated_to_interactive_module_only():
    assert "OBS104" not in rules_of(
        """
        class WidgetInspector:
            def poke(self, share):
                share.set_speed(0.5)
        """,
        path="src/repro/obs/report.py",
    )
