"""Suppression workflows, the lint engine, and the ``repro lint`` CLI."""

import json
import textwrap
from pathlib import Path

from repro.analysis import (
    lint_paths,
    lint_source,
    load_baseline,
    write_baseline,
)
from repro.analysis.cli import lint_main
from repro.cli import main as repro_main

REPO_ROOT = Path(__file__).resolve().parents[2]

BAD = textwrap.dedent(
    """
    import time

    def stamp():
        return time.time()
    """
)

CLEAN = textwrap.dedent(
    """
    def stamp(sim):
        return sim.now
    """
)


# -- inline suppressions --------------------------------------------------


def test_inline_allow_silences_named_rule():
    suppressed = BAD.replace(
        "time.time()", "time.time()  # repro: allow[DET101] -- test fixture"
    )
    assert lint_source(BAD, "mod.py")
    assert lint_source(suppressed, "mod.py") == []


def test_inline_allow_is_rule_specific():
    wrong_rule = BAD.replace("time.time()", "time.time()  # repro: allow[DET102]")
    assert [f.rule for f in lint_source(wrong_rule, "mod.py")] == ["DET101"]


def test_inline_allow_all_silences_everything():
    suppressed = BAD.replace("time.time()", "time.time()  # repro: allow[ALL]")
    assert lint_source(suppressed, "mod.py") == []


# -- baseline workflow ----------------------------------------------------


def test_baseline_suppresses_by_fingerprint_not_line(tmp_path):
    (tmp_path / "mod.py").write_text(BAD)
    baseline = tmp_path / "baseline.json"
    findings = lint_paths([tmp_path], root=tmp_path).findings
    write_baseline(baseline, findings)
    assert [e.rule for e in load_baseline(baseline)] == ["DET101"]

    # Shift the finding to a different line: the baseline still matches
    # because entries key on (rule, path, context), not line numbers.
    (tmp_path / "mod.py").write_text("# moved\n# down\n" + BAD)
    result = lint_paths([tmp_path], root=tmp_path, baseline=baseline)
    assert result.clean
    assert result.suppressed_baseline == 1
    assert result.unused_baseline == []


def test_stale_baseline_entry_is_reported(tmp_path):
    (tmp_path / "mod.py").write_text(CLEAN)
    baseline = tmp_path / "baseline.json"
    baseline.write_text(
        json.dumps(
            {
                "entries": [
                    {
                        "rule": "DET101",
                        "path": "mod.py",
                        "context": "return time.time()",
                        "reason": "fixed long ago",
                    }
                ]
            }
        )
    )
    result = lint_paths([tmp_path], root=tmp_path, baseline=baseline)
    assert not result.findings
    assert [e.rule for e in result.unused_baseline] == ["DET101"]


def test_parse_error_is_a_finding_not_a_crash(tmp_path):
    (tmp_path / "broken.py").write_text("def oops(:\n")
    result = lint_paths([tmp_path], root=tmp_path)
    assert not result.clean
    assert [f.rule for f in result.parse_errors] == ["PARSE"]


# -- CLI ------------------------------------------------------------------


def test_cli_exit_zero_on_clean_tree(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "mod.py").write_text(CLEAN)
    assert lint_main([str(tmp_path / "mod.py")]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_exit_one_on_findings(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "mod.py").write_text(BAD)
    assert lint_main([str(tmp_path / "mod.py")]) == 1
    out = capsys.readouterr().out
    assert "DET101" in out and "sim.now" in out  # rule id + fix hint


def test_cli_exit_two_on_usage_errors(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "mod.py").write_text(CLEAN)
    assert lint_main([str(tmp_path / "missing.py")]) == 2
    assert lint_main(["--rules", "DET999", str(tmp_path / "mod.py")]) == 2


def test_cli_json_report(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "mod.py").write_text(BAD)
    assert lint_main(["--json", str(tmp_path / "mod.py")]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["clean"] is False
    assert report["files_checked"] == 1
    assert [f["rule"] for f in report["findings"]] == ["DET101"]


def test_cli_rules_filter(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "mod.py").write_text(BAD)
    assert lint_main(["--rules", "SIM101", str(tmp_path / "mod.py")]) == 0
    capsys.readouterr()


def test_cli_write_baseline_roundtrip(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "mod.py").write_text(BAD)
    assert lint_main(["--write-baseline", str(tmp_path / "mod.py")]) == 0
    # The checked-in default baseline now covers the finding.
    assert lint_main([str(tmp_path / "mod.py")]) == 0
    capsys.readouterr()


def test_cli_stale_baseline_fails(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "mod.py").write_text(BAD)
    assert lint_main(["--write-baseline", str(tmp_path / "mod.py")]) == 0
    (tmp_path / "mod.py").write_text(CLEAN)
    assert lint_main([str(tmp_path / "mod.py")]) == 1
    assert "stale baseline entry" in capsys.readouterr().out


def test_repro_cli_dispatches_lint(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "mod.py").write_text(CLEAN)
    assert repro_main(["lint", str(tmp_path / "mod.py")]) == 0
    capsys.readouterr()


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET101", "DET203", "SIM104"):
        assert rule_id in out


# -- the repo itself lints clean ------------------------------------------


def test_repository_is_lint_clean():
    result = lint_paths(
        [REPO_ROOT / "src", REPO_ROOT / "benchmarks"],
        root=REPO_ROOT,
        baseline=REPO_ROOT / "lint_baseline.json",
    )
    assert result.clean, [f.render() for f in result.findings + result.parse_errors]
    assert result.unused_baseline == []
