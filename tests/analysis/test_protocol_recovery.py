"""SIM-rule fixtures modeled on the repro.recovery coroutine patterns.

The generic per-rule fixtures live in ``test_lint_rules.py``; these
exercise the protocol checker against the *shapes* the recovery
subsystem actually uses — heartbeat publisher/receiver loops, the
failover watchdog, supervisor restart hand-off events — one positive
(misuse) and one negative (the real, legal idiom) per rule.
"""

import textwrap

from repro.analysis import lint_source


def rules_of(source, path="pkg/recovery_mod.py"):
    return {f.rule for f in lint_source(textwrap.dedent(source), path)}


# -- SIM101: heartbeat loops must yield events, not values ----------------


def test_sim101_flags_publisher_yielding_period():
    # A publisher that yields its period instead of a timeout event:
    # the literal yield silently stalls the coroutine forever.
    assert "SIM101" in rules_of(
        """
        class FailoverMember:
            def _publisher(self):
                while not self._stopped:
                    yield 0.5
                    beat = self._heartbeat()
                    for peer in self.peers:
                        yield self.sandbox.send(peer, 7, beat)
        """
    )


def test_sim101_accepts_real_publisher_shape():
    # The actual publisher idiom: timeout between beats, send per peer.
    assert "SIM101" not in rules_of(
        """
        class FailoverMember:
            def _publisher(self):
                while not self._stopped:
                    yield self.sim.timeout(self.period)
                    beat = self._heartbeat()
                    for peer in self.peers:
                        yield self.sandbox.send(peer, 7, beat)
        """
    )


# -- SIM102: discarded events leak queue entries --------------------------


def test_sim102_flags_discarded_watchdog_timeout():
    # Calling timeout() without yielding it schedules a wakeup nobody
    # observes — the watchdog would spin at time zero.
    assert "SIM102" in rules_of(
        """
        class FailoverMember:
            def _watchdog(self):
                while not self._stopped:
                    self.sim.timeout(self.period)
                    yield self.sim.event()
        """
    )


def test_sim102_accepts_fire_and_forget_send():
    # Fire-and-forget heartbeat sends are legitimate: the network owns
    # the transfer event, the publisher does not need its result.
    assert "SIM102" not in rules_of(
        """
        class FailoverMember:
            def _publisher(self):
                while not self._stopped:
                    yield self.sim.timeout(self.period)
                    self.sandbox.send(self.peer, 7, self._heartbeat())
        """
    )


# -- SIM103: restart hand-off events trigger exactly once -----------------


def test_sim103_flags_double_ready_trigger():
    # A supervisor marking the same readiness event up twice: the
    # second succeed() raises at run time.
    assert "SIM103" in rules_of(
        """
        class Supervisor:
            def _mark_up(self, svc, ready):
                ready.succeed(svc)
                ready.succeed(svc)
        """
    )


def test_sim103_accepts_branch_guarded_trigger():
    # The legal idiom: success and failure live in disjoint branches.
    assert "SIM103" not in rules_of(
        """
        class Supervisor:
            def _on_exit(self, svc, ready, ok):
                if ok:
                    ready.succeed(svc)
                else:
                    ready.fail(RuntimeError("service crashed"))
        """
    )


# -- SIM104: recovery coroutines never re-enter the kernel ----------------


def test_sim104_flags_receiver_stepping_kernel():
    # "Draining" the queue from inside the receiver re-enters run():
    # the kernel forbids it, and the checker flags it statically.
    assert "SIM104" in rules_of(
        """
        class FailoverMember:
            def _receiver(self):
                while not self._stopped:
                    msg = yield self.mailbox.get()
                    self.last_seen[msg.payload.origin] = self.sim.now
                    self.sim.step()
        """
    )


def test_sim104_accepts_real_receiver_shape():
    # The actual receiver idiom: block on the mailbox, record the beat.
    assert "SIM104" not in rules_of(
        """
        class FailoverMember:
            def _receiver(self):
                while not self._stopped:
                    msg = yield self.mailbox.get()
                    self.last_seen[msg.payload.origin] = self.sim.now
        """
    )
