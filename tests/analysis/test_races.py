"""Dynamic tie-order race detector tests.

The canonical positive case: two independent processes touch the same
Store at the same virtual timestamp with no causal path between them, so
their relative order exists only because one event was pushed onto the
heap first.  The detector must flag it — deterministically, with the same
report on every run.
"""

from repro.analysis.races import RaceDetector
from repro.sim import NORMAL, Simulator, Store, URGENT


def _racy_run():
    """Two unrelated writers hit one store at t=1.0; returns the reports."""
    sim = Simulator()
    store = Store(sim)
    detector = RaceDetector(sim).attach()
    detector.watch_store(store, "shared")

    def writer(value):
        yield sim.timeout(1.0)
        store.put(value)

    sim.process(writer("a"), name="first")
    sim.process(writer("b"), name="second")
    sim.run()
    reports = detector.finish()
    detector.detach()
    return reports


def test_same_timestamp_store_conflict_is_flagged():
    reports = _racy_run()
    assert len(reports) == 1
    report = reports[0]
    assert report.label == "shared"
    assert report.time == 1.0
    assert report.first.context != report.second.context
    assert "FIFO" in report.message()


def test_report_is_deterministic_across_runs():
    first = [r.to_dict() for r in _racy_run()]
    second = [r.to_dict() for r in _racy_run()]
    assert first == second


def test_different_timestamps_do_not_race():
    sim = Simulator()
    store = Store(sim)
    detector = RaceDetector(sim).attach()
    detector.watch_store(store, "shared")

    def writer(value, at):
        yield sim.timeout(at)
        store.put(value)

    sim.process(writer("a", 1.0))
    sim.process(writer("b", 2.0))
    sim.run()
    assert detector.finish() == []


def test_same_process_does_not_race_with_itself():
    sim = Simulator()
    store = Store(sim)
    detector = RaceDetector(sim).attach()
    detector.watch_store(store, "shared")

    def writer():
        yield sim.timeout(1.0)
        store.put("a")
        store.put("b")

    sim.process(writer())
    sim.run()
    assert detector.finish() == []


def test_put_wakes_receiver_is_causal_not_racy():
    # The classic chain: a parked get resumes *because of* the put, at the
    # same timestamp.  That order is causal (happens-before), not a tie.
    sim = Simulator()
    store = Store(sim)
    detector = RaceDetector(sim).attach()
    detector.watch_store(store, "shared")
    received = []

    def receiver():
        item = yield store.get()
        received.append(item)

    def sender():
        yield sim.timeout(1.0)
        store.put("msg")

    sim.process(receiver())
    sim.process(sender())
    sim.run()
    assert received == ["msg"]
    assert detector.finish() == []


def test_priority_separated_accesses_are_not_a_tie():
    # URGENT-before-NORMAL at one timestamp is semantic ordering, not a
    # FIFO accident, so it must not be reported.
    sim = Simulator()
    store = Store(sim)
    detector = RaceDetector(sim).attach()
    detector.watch_store(store, "shared")

    def writer(value, priority):
        yield sim.timeout(1.0, priority=priority)
        store.put(value)

    sim.process(writer("urgent", URGENT))
    sim.process(writer("normal", NORMAL))
    sim.run()
    assert detector.finish() == []


def test_watch_mapping_flags_read_write_tie():
    sim = Simulator()

    class Table:
        def __init__(self):
            self.entries = {}

    table = Table()
    detector = RaceDetector(sim).attach()
    detector.watch_mapping(table, "entries", "table.entries")

    def writer():
        yield sim.timeout(1.0)
        table.entries["k"] = 1

    def reader(out):
        yield sim.timeout(1.0)
        out.append(table.entries.get("k"))

    seen = []
    sim.process(writer(), name="writer")
    sim.process(reader(seen), name="reader")
    sim.run()
    reports = detector.finish()
    assert [r.label for r in reports] == ["table.entries"]
    assert {reports[0].first.op, reports[0].second.op} == {"read", "write"}


def test_watch_mapping_read_read_is_not_a_race():
    sim = Simulator()

    class Table:
        def __init__(self):
            self.entries = {"k": 1}

    table = Table()
    detector = RaceDetector(sim).attach()
    detector.watch_mapping(table, "entries", "table.entries")

    def reader(out):
        yield sim.timeout(1.0)
        out.append(table.entries.get("k"))

    seen = []
    sim.process(reader(seen))
    sim.process(reader(seen))
    sim.run()
    assert seen == [1, 1]
    assert detector.finish() == []


def test_setup_accesses_never_race():
    sim = Simulator()
    store = Store(sim)
    detector = RaceDetector(sim).attach()
    detector.watch_store(store, "shared")
    store.put("preloaded")  # before run(): no executing step, cannot race

    def consumer(out):
        yield sim.timeout(1.0)
        out.append(store.try_get())

    got = []
    sim.process(consumer(got))
    sim.run()
    assert got == ["preloaded"]
    assert detector.finish() == []


def test_detach_restores_simulator_hooks():
    sim = Simulator()
    detector = RaceDetector(sim).attach()
    assert sim.step_hook is not None
    assert "_enqueue" in sim.__dict__  # instrumented shadow installed
    detector.detach()
    assert sim.step_hook is None
    assert "_enqueue" not in sim.__dict__  # class method restored
    assert sim._enqueue.__func__ is Simulator._enqueue
