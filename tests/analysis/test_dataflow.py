"""Fixture tests for the interprocedural dataflow linter (DET5xx)."""

import textwrap

from repro.analysis import lint_source
from repro.analysis.dataflow import flow_source


def findings_of(source, path="pkg/mod.py"):
    return flow_source(textwrap.dedent(source), path)


def rules_of(source, path="pkg/mod.py"):
    return {f.rule for f in findings_of(source, path)}


# -- DET501: wall-clock taint across function boundaries -------------------

_WALLCLOCK_CHAIN = """
    import time

    def stamp():
        return time.time()

    def jitter(base):
        return base + 0.5

    def arm(sim):
        sim.timeout(jitter(stamp()))
"""


def test_det501_reports_multi_hop_wallclock_chain():
    findings = findings_of(_WALLCLOCK_CHAIN)
    assert {f.rule for f in findings} == {"DET501"}
    (finding,) = findings
    # The message is a dataflow witness: origin, hops, sink.
    assert "time.time" in finding.message
    assert "timeout" in finding.message
    assert "hop" in finding.message


def test_local_rules_miss_the_chain_sink():
    # The acceptance case: DET1xx flags the raw source line, but only
    # the dataflow pass connects it to the ordering sink in arm().
    local = {f.rule for f in lint_source(textwrap.dedent(_WALLCLOCK_CHAIN))}
    assert "DET101" in local  # raw time.time() is still flagged locally
    assert not any(r.startswith("DET5") for r in local)
    assert "DET501" in rules_of(_WALLCLOCK_CHAIN)


def test_det501_sink_inside_callee():
    # Source in the caller, sink in the callee: param_to_sink summary.
    assert "DET501" in rules_of(
        """
        import time

        def send(q, x):
            q.put(x)

        def emit(q):
            send(q, time.time())
        """
    )


def test_single_function_flow_left_to_local_rules():
    # Everything in one function: DET1xx territory, not a DET5xx chain.
    assert rules_of(
        """
        import time

        def arm(sim):
            sim.timeout(time.time())
        """
    ) == set()


# -- DET502: entropy / RNG taint -------------------------------------------


def test_det502_flows_through_self_attribute():
    assert "DET502" in rules_of(
        """
        import random

        class Emitter:
            def __init__(self):
                self.salt = random.random()

            def emit(self, queue):
                queue.put(self.salt)
        """
    )


# -- DET503: unordered-iteration taint -------------------------------------


def test_det503_set_order_reaching_scheduler():
    assert "DET503" in rules_of(
        """
        def pick(items):
            return next(iter(set(items)))

        def dispatch(sim, items):
            sim.process(pick(items))
        """
    )


def test_sorted_sanitizes_unordered_taint():
    assert "DET503" not in rules_of(
        """
        def pick(items):
            return sorted(set(items))

        def dispatch(sim, items):
            sim.process(pick(items)[0])
        """
    )


def test_sorted_does_not_sanitize_wallclock():
    # sorted() fixes *order* nondeterminism, not value nondeterminism.
    assert "DET501" in rules_of(
        """
        import time

        def stamps():
            return sorted([time.time()])

        def arm(sim):
            sim.timeout(stamps()[0])
        """
    )


# -- suppression workflow ---------------------------------------------------


def test_inline_allow_silences_flow_finding():
    assert (
        rules_of(
            """
            import time

            def stamp():
                return time.time()

            def arm(sim):
                sim.timeout(stamp())  # repro: allow[DET501] -- fixture
            """
        )
        == set()
    )


def test_parse_error_is_reported_not_raised():
    findings = findings_of("def broken(:\n")
    assert [f.rule for f in findings] == ["PARSE"]
