"""Tests for the schedule explorer and its tiebreak policies."""

import json

import pytest

from repro.analysis.explore import (
    Flip,
    Scenario,
    ScheduleExplorer,
    builtin_scenarios,
    first_payload_divergence,
    payload_digest,
    run_racy,
)
from repro.analysis.schedule import RANK_STRIDE, DemoteTiebreak, FifoTiebreak
from repro.sim import Simulator


# -- tiebreak policies -----------------------------------------------------


def test_empty_demote_policy_is_byte_identical_to_fifo():
    plain = run_racy(seed=0)
    fifo = run_racy(seed=0, tiebreak=FifoTiebreak())
    empty = run_racy(seed=0, tiebreak=DemoteTiebreak({}))
    assert json.dumps(fifo, sort_keys=True) == json.dumps(plain, sort_keys=True)
    assert json.dumps(empty, sort_keys=True) == json.dumps(plain, sort_keys=True)


def test_demote_rank_must_be_positive():
    with pytest.raises(ValueError):
        DemoteTiebreak({3: 0})


def test_demote_records_applied_directives():
    policy = DemoteTiebreak({0: 1, 999999: 2})
    run_racy(seed=0, tiebreak=policy)
    assert policy.applied == {0: 1}  # seq 999999 never enqueued
    assert policy.key(0.0, 1, 0, None) == 0 + RANK_STRIDE


def test_observe_counts_tie_windows():
    policy = DemoteTiebreak(observe=True)
    run_racy(seed=0, tiebreak=policy)
    # The racy workload has (at least) its two same-instant write windows.
    assert policy.tie_windows() >= 2
    assert policy.events_in_ties() >= 4


# -- payload digest / divergence helpers -----------------------------------


def test_payload_digest_ignores_volatile_keys():
    a = {"x": 1, "races": ["anything"]}
    b = {"x": 1, "races": []}
    assert payload_digest(a) == payload_digest(b)
    assert payload_digest({"x": 2}) != payload_digest({"x": 1})


def test_first_payload_divergence_paths():
    assert first_payload_divergence({"a": 1}, {"a": 2}) == "$.a"
    assert (
        first_payload_divergence({"a": {"b": [1, 2]}}, {"a": {"b": [1, 3]}})
        == "$.a.b[1]"
    )
    assert first_payload_divergence({"a": 1}, {"a": 1}) is None


# -- exploration of the seeded racy workload -------------------------------


def test_racy_explorer_finds_minimal_divergent_schedule():
    explorer = ScheduleExplorer(builtin_scenarios(seed=0)["racy"])
    result = explorer.explore()
    assert not result.certified
    assert result.divergences, "the winner race must diverge"
    div = result.divergences[0]
    # Delta-debugged witness: at most 3 flips (here exactly one, the
    # t=2 winner window; the t=1 scratch race is benign).
    assert 1 <= len(div.flips) <= 3
    assert all(f.time == 2.0 for f in div.flips)
    assert set(div.flips) <= set(div.found_flips)
    assert div.payload_path is not None
    assert div.first_span is not None
    assert div.error is None


def test_racy_exploration_is_deterministic():
    scenarios = builtin_scenarios(seed=0)
    first = ScheduleExplorer(scenarios["racy"]).explore()
    second = ScheduleExplorer(builtin_scenarios(seed=0)["racy"]).explore()
    assert first.to_dict() == second.to_dict()


def test_benign_race_alone_does_not_diverge():
    explorer = ScheduleExplorer(builtin_scenarios(seed=0)["racy"])
    base_digest, races, _payload, _err = explorer._execute(())
    scratch = [r for r in races if r["label"] == "racy.scratch"]
    assert scratch, "baseline must report the scratch race"
    flip = Flip.from_report(scratch[0])
    digest, _r, _p, _e = explorer._execute((flip,), detect=False)
    assert digest == base_digest


def test_minimize_drops_irrelevant_flips():
    explorer = ScheduleExplorer(builtin_scenarios(seed=0)["racy"])
    base_digest, races, _payload, _err = explorer._execute(())
    flips = tuple(Flip.from_report(r) for r in races)
    assert len(flips) >= 2  # scratch + winner
    minimal = explorer._minimize(flips, base_digest)
    assert len(minimal) == 1
    assert minimal[0].time == 2.0


# -- certification and budgets ---------------------------------------------


def _clean_scenario():
    """Two same-instant callbacks touching disjoint state: race-free."""

    def run(tiebreak=None, detect_races=False, recorder=None):
        sim = Simulator(tiebreak=tiebreak)
        log = {}
        sim.schedule_callback(1.0, lambda: log.__setitem__("a", 1))
        sim.schedule_callback(1.0, lambda: log.__setitem__("b", 2))
        sim.run()
        payload = {"log": dict(sorted(log.items()))}
        if detect_races:
            payload["races"] = []
        return payload

    return Scenario(name="clean", run=run, description="no shared state")


def test_race_free_scenario_certifies_immediately():
    result = ScheduleExplorer(_clean_scenario()).explore()
    assert result.certified
    assert result.exhausted
    assert result.explored == 0
    assert result.budget_hit is None
    assert result.divergences == []


def test_schedule_budget_blocks_certification():
    explorer = ScheduleExplorer(
        builtin_scenarios(seed=0)["racy"], max_schedules=1
    )
    result = explorer.explore()
    assert result.budget_hit == "max_schedules"
    assert not result.certified
    assert not result.exhausted
