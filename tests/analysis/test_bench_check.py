"""Tests for ``repro bench check`` — baselines, field kinds, --block-on,
--update."""

import json

import pytest

from repro.analysis.bench import (
    _bench_filename,
    bench_main,
    compare_dirs,
    compare_records,
)

BASELINE = {
    "bytes_identical": True,   # bool -> exact
    "cells": 24,               # int  -> exact
    "wall_time_s": 1.0,        # timing float -> band, lower is better
    "speedup": 2.0,            # throughput float -> band, higher is better
    "cpu_count": 8,            # info: never fails
}


def by_field(rows):
    return {r["field"]: r for r in rows}


def test_exact_fields_regress_on_any_drift():
    fresh = dict(BASELINE, bytes_identical=False, cells=23)
    rows = by_field(compare_records("b", fresh, BASELINE))
    assert rows["bytes_identical"]["status"] == "regression"
    assert rows["cells"]["status"] == "regression"
    assert rows["cpu_count"]["status"] == "info"


def test_band_fields_have_direction():
    # Timing doubled (past 50% tolerance) -> regression; speedup doubled
    # -> improvement, never a failure.
    fresh = dict(BASELINE, wall_time_s=2.0, speedup=4.0)
    rows = by_field(compare_records("b", fresh, BASELINE))
    assert rows["wall_time_s"]["status"] == "regression"
    assert rows["speedup"]["status"] == "improved"
    # The good direction for a timing is also just an improvement.
    rows = by_field(compare_records("b", dict(BASELINE, wall_time_s=0.1),
                                    BASELINE))
    assert rows["wall_time_s"]["status"] == "improved"


def test_missing_field_is_a_structural_regression():
    fresh = {k: v for k, v in BASELINE.items() if k != "cells"}
    rows = by_field(compare_records("b", fresh, BASELINE))
    assert rows["cells"]["status"] == "regression"
    assert rows["cells"]["kind"] == "missing"


def write_pair(tmp_path, fresh, baseline):
    fresh_dir, base_dir = tmp_path / "fresh", tmp_path / "base"
    fresh_dir.mkdir()
    base_dir.mkdir()
    (fresh_dir / "BENCH_x.json").write_text(json.dumps(fresh))
    (base_dir / "BENCH_x.json").write_text(json.dumps(baseline))
    return fresh_dir, base_dir


def test_compare_dirs_separates_exact_from_band_regressions(tmp_path):
    fresh = dict(BASELINE, cells=23, wall_time_s=2.0)
    fresh_dir, base_dir = write_pair(tmp_path, fresh, BASELINE)
    report = compare_dirs(fresh_dir, base_dir)
    assert report["regressions"] == 2
    assert report["exact_regressions"] == 1
    assert not report["ok"]


@pytest.mark.parametrize(
    "fresh_overrides,block_on,expected_exit",
    [
        ({}, "all", 0),                      # clean either way
        ({}, "exact", 0),
        ({"wall_time_s": 2.0}, "all", 1),    # band drift blocks under 'all'
        ({"wall_time_s": 2.0}, "exact", 0),  # ...but is advisory under 'exact'
        ({"cells": 23}, "exact", 1),         # exact drift always blocks
        ({"cells": 23}, "all", 1),
    ],
)
def test_block_on_policy_sets_exit_code(tmp_path, capsys,
                                        fresh_overrides, block_on,
                                        expected_exit):
    fresh_dir, base_dir = write_pair(
        tmp_path, dict(BASELINE, **fresh_overrides), BASELINE
    )
    rc = bench_main([
        "check", "--fresh", str(fresh_dir), "--baseline", str(base_dir),
        "--block-on", block_on,
    ])
    capsys.readouterr()
    assert rc == expected_exit


def test_json_report_records_the_policy(tmp_path, capsys):
    fresh_dir, base_dir = write_pair(
        tmp_path, dict(BASELINE, wall_time_s=2.0), BASELINE
    )
    out = tmp_path / "report.json"
    rc = bench_main([
        "check", "--fresh", str(fresh_dir), "--baseline", str(base_dir),
        "--block-on", "exact", "--json", "--out", str(out),
    ])
    capsys.readouterr()
    assert rc == 0
    report = json.loads(out.read_text())
    assert report["block_on"] == "exact"
    assert report["regressions"] == 1
    assert report["exact_regressions"] == 0
    assert not report["ok"]  # 'ok' still reports *any* regression


def test_missing_benchmark_file_blocks_under_exact(tmp_path, capsys):
    fresh_dir, base_dir = tmp_path / "fresh", tmp_path / "base"
    fresh_dir.mkdir()
    base_dir.mkdir()
    (base_dir / "BENCH_x.json").write_text(json.dumps(BASELINE))
    rc = bench_main([
        "check", "--fresh", str(fresh_dir), "--baseline", str(base_dir),
        "--block-on", "exact",
    ])
    capsys.readouterr()
    assert rc == 1


def test_update_name_normalisation():
    assert _bench_filename("sim") == "BENCH_sim.json"
    assert _bench_filename("BENCH_sim") == "BENCH_sim.json"
    assert _bench_filename("BENCH_sim.json") == "BENCH_sim.json"


def test_update_accepts_drift_and_rewrites_baseline(tmp_path, capsys):
    # Exact drift (cells) would normally block, but --update x accepts
    # the fresh numbers: exit 0 and the baseline copy is overwritten.
    fresh = dict(BASELINE, cells=23, wall_time_s=2.0)
    fresh_dir, base_dir = write_pair(tmp_path, fresh, BASELINE)
    out = tmp_path / "report.json"
    rc = bench_main([
        "check", "--fresh", str(fresh_dir), "--baseline", str(base_dir),
        "--update", "x", "--json", "--out", str(out),
    ])
    capsys.readouterr()
    assert rc == 0
    assert json.loads((base_dir / "BENCH_x.json").read_text()) == fresh
    report = json.loads(out.read_text())
    assert report["updated"] == ["BENCH_x.json"]
    assert report["ok"]
    statuses = {r["field"]: r["status"] for r in report["rows"]}
    assert statuses["cells"] == "updated"
    assert statuses["wall_time_s"] == "updated"
    assert statuses["bytes_identical"] == "ok"  # unchanged fields stay ok


def test_update_only_unblocks_the_named_benchmark(tmp_path, capsys):
    fresh_dir, base_dir = write_pair(
        tmp_path, dict(BASELINE, cells=23), BASELINE
    )
    (fresh_dir / "BENCH_y.json").write_text(json.dumps({"cells": 9}))
    (base_dir / "BENCH_y.json").write_text(json.dumps({"cells": 10}))
    rc = bench_main([
        "check", "--fresh", str(fresh_dir), "--baseline", str(base_dir),
        "--update", "y",
    ])
    capsys.readouterr()
    # BENCH_x's exact drift still blocks; only BENCH_y was accepted.
    assert rc == 1
    assert json.loads((base_dir / "BENCH_y.json").read_text()) == {"cells": 9}
    assert json.loads((base_dir / "BENCH_x.json").read_text()) == BASELINE


def test_update_missing_fresh_record_is_usage_error(tmp_path, capsys):
    fresh_dir, base_dir = write_pair(tmp_path, BASELINE, BASELINE)
    rc = bench_main([
        "check", "--fresh", str(fresh_dir), "--baseline", str(base_dir),
        "--update", "nope",
    ])
    err = capsys.readouterr().err
    assert rc == 2
    assert "BENCH_nope.json" in err


def test_update_with_shared_fresh_and_baseline_dir(tmp_path, capsys):
    # The default invocation compares the committed copies to themselves;
    # --update must not corrupt the file by copying it onto itself.
    d = tmp_path / "out"
    d.mkdir()
    (d / "BENCH_x.json").write_text(json.dumps(BASELINE))
    rc = bench_main(["check", "--fresh", str(d), "--update", "x"])
    capsys.readouterr()
    assert rc == 0
    assert json.loads((d / "BENCH_x.json").read_text()) == BASELINE
