"""Satellite guarantee: the crowd subsystem never touches ambient state.

The repo's own static determinism linter must find nothing in
``src/repro/crowd`` — no wall clocks, no global RNG, no unordered
iteration feeding the simulator — and the package must draw randomness
exclusively from the dedicated named ``"crowd"`` stream.
"""

import re
from pathlib import Path

from repro.analysis import lint_paths

REPO = Path(__file__).resolve().parents[2]
CROWD = REPO / "src" / "repro" / "crowd"


def test_crowd_package_lints_clean():
    result = lint_paths([CROWD], root=REPO)
    assert result.files_checked >= 3
    assert result.findings == [], [f.render() for f in result.findings]
    # Clean outright — not clean-by-suppression.
    assert result.suppressed_inline == 0


def test_crowd_randomness_comes_only_from_the_named_stream():
    sources = {p.name: p.read_text() for p in CROWD.glob("*.py")}
    assert sources, "crowd package has no modules?"
    for name, text in sources.items():
        # No direct numpy/stdlib RNG anywhere in the subsystem.
        assert "np.random" not in text, name
        assert "default_rng" not in text, name
        assert not re.search(r"\bimport random\b", text), name
        assert "time.time" not in text and "perf_counter" not in text, name
    # The one generator the subsystem owns is the named "crowd" stream.
    assert 'stream(seed, "crowd")' in sources["source.py"]
    calls = [
        m for text in sources.values()
        for m in re.findall(r"=\s*stream\(", text)
    ]
    assert len(calls) == 1, "exactly one stream() construction site"


def test_arrival_processes_are_frozen_pure_functions():
    """Arrival processes are immutable values: rate(t) can hide no state."""
    import dataclasses

    import pytest

    from repro.crowd import ClosedLoop, ConstantRate, DiurnalRate, FlashCrowd

    for proc in (
        ConstantRate(0.1),
        DiurnalRate(base=0.03, amplitude=0.02, period=60.0),
        FlashCrowd(baseline=0.0, spike=1.0, t_start=1.0, t_peak=2.0,
                   t_fall=3.0, t_end=4.0),
        ClosedLoop(think=1.0),
    ):
        assert dataclasses.is_dataclass(proc)
        assert proc.__dataclass_params__.frozen
        assert proc.rate(5.0) == proc.rate(5.0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            proc.think = 2.0
