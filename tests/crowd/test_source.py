"""End-to-end tests for the aggregate CrowdSource/CrowdAgent pair.

A minimal two-host testbed (no viz app, no controller): the source on
``client`` feeds the agent on ``server`` over a real link, so these pin
the aggregate protocol's bookkeeping — conservation of every request,
closed-loop population accounting, byte-identical repeats, and guard
shedding by priority — at populations small enough for tier-1.
"""

import pytest

from repro.crowd import (
    ClosedLoop,
    ConstantRate,
    CrowdAgent,
    CrowdClass,
    CrowdSource,
    ServiceClass,
)
from repro.recovery import OverloadGuard, OverloadPolicy
from repro.sandbox import HostSpec, LinkSpec, Testbed


def _flat_price(_config):
    return 1e-4, 200.0


def run_crowd_pair(
    classes,
    seed=0,
    horizon=20.0,
    guard=None,
    service=None,
    link_bw=12.5e6,
    until=60.0,
):
    tb = Testbed(
        host_specs=[HostSpec("client", 450.0), HostSpec("server", 450.0)],
        link_specs=[LinkSpec("client", "server", link_bw, 0.002)],
        seed=seed,
    )
    source = CrowdSource(
        tb.sim, tb.hosts["client"], "server", "crowd.req", classes,
        seed=seed, tick=0.25, horizon=horizon, drain=10.0,
    )
    if service is None:
        service = [
            ServiceClass(c.name, price=_flat_price, link_weight=8.0)
            for c in classes
        ]
    agent = CrowdAgent(
        tb.sim, tb.hosts["server"], "crowd.req", service,
        config_fn=lambda: {}, guard=guard, source=source,
    )
    tb.run(until=until)
    return source, agent, tb


def _mixed_classes():
    return [
        CrowdClass("open", users=500, arrivals=ConstantRate(per_user=0.05)),
        CrowdClass("closed", users=200, arrivals=ClosedLoop(think=2.0),
                   priority=1),
    ]


def test_every_issued_request_is_accounted_for():
    source, _agent, _tb = run_crowd_pair(_mixed_classes())
    assert source.closed
    for name, row in source.stats().items():
        assert row["issued"] > 0, name
        assert row["served"] + row["shed"] + row["lost"] == row["issued"]
        assert row["satisfied"] + row["violated"] == row["issued"]
        assert row["inflight"] == 0
    totals = source.totals()
    assert totals["served"] + totals["shed"] + totals["lost"] == totals["issued"]


def test_closed_loop_population_is_conserved():
    classes = [CrowdClass("closed", users=300, arrivals=ClosedLoop(think=1.5))]
    source, _agent, _tb = run_crowd_pair(classes)
    row = source.stats()["closed"]
    # Every user ends up back in the thinking pool once the run drains.
    assert row["thinking"] == 300
    assert row["inflight"] == 0
    assert row["issued"] > 300  # each user cycled more than once


def test_finished_event_carries_totals():
    source, _agent, _tb = run_crowd_pair(_mixed_classes())
    assert source.finished.triggered
    assert source.finished.value == source.totals()


def test_same_seed_runs_are_identical_and_seeds_differ():
    first, _, _ = run_crowd_pair(_mixed_classes(), seed=3)
    second, _, _ = run_crowd_pair(_mixed_classes(), seed=3)
    other, _, _ = run_crowd_pair(_mixed_classes(), seed=4)
    assert first.stats() == second.stats()
    assert first.stats() != other.stats()


def test_fast_service_satisfies_qos():
    """With an idle server and a fat link, every request meets its deadline."""
    classes = [CrowdClass("open", users=100,
                          arrivals=ConstantRate(per_user=0.05))]
    source, _agent, _tb = run_crowd_pair(classes)
    row = source.stats()["open"]
    assert row["lost"] == 0
    assert row["violated"] == 0
    assert row["satisfied"] == row["issued"]
    assert 0.0 < row["resp_max"] < 1.0


def test_guard_sheds_low_priority_only():
    """Offered load far beyond service capacity trips depth shedding, and
    the keep_priority class rides through untouched."""
    classes = [
        CrowdClass("open", users=4000, arrivals=ConstantRate(per_user=0.5)),
        CrowdClass("vip", users=50, arrivals=ClosedLoop(think=1.0),
                   priority=1),
    ]
    service = [
        ServiceClass("open", price=lambda _c: (5e-3, 200.0), link_weight=8.0),
        ServiceClass("vip", price=lambda _c: (5e-3, 200.0), link_weight=4.0),
    ]
    guard = OverloadGuard(
        OverloadPolicy(queue_capacity=100_000, shed_depth=500,
                       keep_priority=1)
    )
    source, _agent, _tb = run_crowd_pair(
        classes, guard=guard, service=service, horizon=15.0
    )
    stats = source.stats()
    assert stats["open"]["shed"] > 0
    assert stats["vip"]["shed"] == 0
    assert guard.shed_low_priority > 0
    assert guard.shed_hard == 0


def test_observer_reads_do_not_perturb_the_run():
    """stats()/totals() mid-run are passive projections."""
    def run(probe: bool):
        classes = _mixed_classes()
        tb = Testbed(
            host_specs=[HostSpec("client", 450.0), HostSpec("server", 450.0)],
            link_specs=[LinkSpec("client", "server", 12.5e6, 0.002)],
            seed=0,
        )
        source = CrowdSource(
            tb.sim, tb.hosts["client"], "server", "crowd.req", classes,
            seed=0, tick=0.25, horizon=20.0, drain=10.0,
        )
        agent = CrowdAgent(
            tb.sim, tb.hosts["server"], "crowd.req",
            [ServiceClass(c.name, price=_flat_price, link_weight=8.0)
             for c in classes],
            config_fn=lambda: {}, source=source,
        )

        def prober():
            while not source.closed:
                source.stats()
                source.totals()
                for flow in agent._flows:
                    flow.drained()
                yield tb.sim.timeout(0.1)

        if probe:
            tb.sim.process(prober())
        tb.run(until=60.0)
        return source.stats()

    assert run(probe=False) == run(probe=True)


def test_duplicate_class_names_rejected():
    tb = Testbed(host_specs=[HostSpec("client", 450.0)])
    classes = [
        CrowdClass("dup", users=1, arrivals=ConstantRate(per_user=0.1)),
        CrowdClass("dup", users=1, arrivals=ConstantRate(per_user=0.1)),
    ]
    with pytest.raises(ValueError, match="duplicate crowd class names"):
        CrowdSource(tb.sim, tb.hosts["client"], "server", "crowd.req",
                    classes, seed=0)
    with pytest.raises(ValueError, match="at least one class"):
        CrowdSource(tb.sim, tb.hosts["client"], "server", "crowd.req",
                    [], seed=0)
