"""Unit tests for the arrival-rate processes.

Every process is a pure function of time — these tests pin the shapes
(clipping, breakpoints, symmetry) the experiment tuning relies on.
"""

import math

import pytest

from repro.crowd import ClosedLoop, ConstantRate, DiurnalRate, FlashCrowd


def test_constant_rate_is_flat():
    proc = ConstantRate(per_user=0.25)
    assert proc.rate(0.0) == proc.rate(17.3) == 0.25
    assert not proc.closed_loop


def test_diurnal_peak_and_trough():
    proc = DiurnalRate(base=0.03, amplitude=0.02, period=60.0)
    # Peak a quarter-period in, trough three quarters in.
    assert proc.rate(15.0) == pytest.approx(0.05)
    assert proc.rate(45.0) == pytest.approx(0.01)
    assert proc.rate(0.0) == pytest.approx(0.03)
    assert proc.peak() == pytest.approx(0.05)


def test_diurnal_clips_at_zero():
    proc = DiurnalRate(base=0.01, amplitude=0.05, period=60.0)
    assert proc.rate(45.0) == 0.0  # base - amplitude < 0 -> clipped
    assert proc.rate(15.0) == pytest.approx(0.06)


def test_diurnal_phase_shifts_peak():
    # phase=-pi/2 moves the peak to half a period in.
    proc = DiurnalRate(base=0.03, amplitude=0.02, period=60.0,
                       phase=-math.pi / 2)
    assert proc.rate(30.0) == pytest.approx(0.05)
    assert proc.rate(0.0) == pytest.approx(0.01)


def test_flash_crowd_trapezoid():
    proc = FlashCrowd(baseline=0.01, spike=0.5, t_start=10.0, t_peak=20.0,
                      t_fall=30.0, t_end=40.0)
    assert proc.rate(0.0) == 0.01
    assert proc.rate(10.0) == pytest.approx(0.01)
    assert proc.rate(15.0) == pytest.approx((0.01 + 0.5) / 2)  # mid-ramp
    assert proc.rate(20.0) == pytest.approx(0.5)
    assert proc.rate(25.0) == pytest.approx(0.5)  # plateau
    assert proc.rate(35.0) == pytest.approx((0.5 + 0.01) / 2)  # mid-decay
    assert proc.rate(40.0) == 0.01
    assert proc.rate(1e6) == 0.01


def test_flash_crowd_degenerate_instant_spike():
    # Coincident breakpoints are legal: a step up and straight back down.
    proc = FlashCrowd(baseline=0.0, spike=1.0, t_start=5.0, t_peak=5.0,
                      t_fall=5.0, t_end=5.0)
    assert proc.rate(4.999) == 0.0
    assert proc.rate(5.0) == 0.0  # t >= t_end


def test_flash_crowd_rejects_unordered_breakpoints():
    with pytest.raises(ValueError, match="breakpoints must be ordered"):
        FlashCrowd(baseline=0.0, spike=1.0, t_start=20.0, t_peak=10.0,
                   t_fall=30.0, t_end=40.0)


def test_closed_loop_rate_and_tick_probability():
    proc = ClosedLoop(think=2.0)
    assert proc.closed_loop
    assert proc.rate(0.0) == pytest.approx(0.5)
    assert proc.tick_probability(0.25) == pytest.approx(1.0 - math.exp(-0.125))
    # Probability saturates monotonically toward 1.
    assert proc.tick_probability(100.0) == pytest.approx(1.0, abs=1e-12)
    assert ClosedLoop(think=0.0).tick_probability(0.25) == 1.0
