"""Satellite guarantee: sessions-mode CrowdSource == plain coroutine client.

The aggregate subsystem's per-user fallback (``CrowdSource.drive_sessions``)
must be *behaviour-preserving*: driving the streaming app's client half as
a crowd session with N=1 produces exactly the timeline the app's own
launcher produces.  This is the regression anchor for the whole
aggregation story — if the plumbing ever perturbs a single-client run,
the 1M-user runs built on it measure an artifact.
"""

import pytest

from repro.apps import StreamWorkload, make_streaming_app
from repro.apps.streaming import stream_client_session
from repro.crowd import ClosedLoop, CrowdClass, CrowdSource
from repro.tunable import Configuration

CONFIG = {"fps": 15, "quality": "medium", "c": "lzw"}


def _run_launcher_client(config, duration=6.0):
    """Control: the app's own launcher spawns the client coroutine."""
    from repro.sandbox import Testbed

    app = make_streaming_app()
    tb = Testbed(host_specs=app.env.host_specs(), link_specs=app.env.link_specs())
    wl = StreamWorkload(duration=duration)
    rt = app.instantiate(tb, Configuration(config), workload=wl)
    tb.run(until=3600)
    assert rt.finished.triggered
    return rt, wl


def _run_crowd_session_client(config, duration=6.0):
    """Same app, but the client half runs as a CrowdSource session."""
    from repro.sandbox import Testbed

    app = make_streaming_app(client_session=lambda rt, wl: None)
    tb = Testbed(host_specs=app.env.host_specs(), link_specs=app.env.link_specs())
    wl = StreamWorkload(duration=duration)
    rt = app.instantiate(tb, Configuration(config), workload=wl)
    source = CrowdSource(
        tb.sim,
        tb.hosts["client"],
        "server",
        "unused.req",
        [
            CrowdClass(
                "stream",
                users=1,
                arrivals=ClosedLoop(think=1.0),
                session=lambda uid: stream_client_session(rt, wl),
            )
        ],
        seed=0,
    )
    tb.sim.process(source.drive_sessions(), name="crowd.sessions")
    tb.run(until=3600)
    assert rt.finished.triggered
    return rt, wl


@pytest.mark.parametrize(
    "config",
    [
        CONFIG,
        {"fps": 30, "quality": "low", "c": "none"},
    ],
    ids=["medium-lzw", "low-raw"],
)
def test_session_mode_reproduces_launcher_timeline(config):
    rt_a, wl_a = _run_launcher_client(config)
    rt_b, wl_b = _run_crowd_session_client(config)
    # The frame log is the full observable timeline: send instant,
    # delivery instant, and identity of every displayed frame.
    assert wl_a.frame_log == wl_b.frame_log
    assert len(wl_a.frame_log) > 10
    for metric in ("fps_delivered", "frame_lag", "quality_bytes"):
        assert rt_a.qos.get(metric) == rt_b.qos.get(metric), metric


def test_session_mode_runs_qos_pipeline():
    rt, wl = _run_crowd_session_client(CONFIG)
    assert rt.qos.get("fps_delivered") == pytest.approx(15.0, rel=0.1)
    assert wl.frame_log, "session client displayed no frames"
