"""Reproduce the paper's Experiment 1 with a narrated run (Fig. 7a).

The active visualization client downloads ten images over a 500 KB/s pipe
that degrades to 50 KB/s after 25 s.  The framework:

- profiles LZW ("compression A") and bzip2 ("compression B") over the
  bandwidth axis in the virtual testbed (this is Fig. 6a),
- configures the application with A initially (right choice at 500 KB/s),
- detects the bandwidth drop through the monitoring agent and switches to
  B via the steering agent, notifying the server mid-session.

Run:  python examples/adaptive_visualization.py
"""

from repro.experiments import run_experiment1
from repro.experiments.fig6 import fig6a_database

print("profiling compression configurations over the bandwidth axis...")
db, _dims, configs = fig6a_database()
for config in configs:
    times = {
        int(p["client.network"] / 1e3): round(
            db.record_at(config, p).metrics["transmit_time"], 1
        )
        for p in sorted(db.points_for(config), key=lambda p: p["client.network"])
    }
    print(f"  {config.c:6s}: transmit_time by KB/s = {times}")

print("\nrunning Experiment 1 (adaptive + two static baselines)...")
figure, runs = run_experiment1(db=db)
print(figure.render())

adaptive = runs["adaptive"]
t_switch, old, new = adaptive.switches[0]
print(f"\nthe monitoring agent detected the drop and the scheduler switched "
      f"{old.c} -> {new.c} at t={t_switch:.1f}s")
print(f"totals: adaptive {adaptive.total_time:.0f}s | "
      f"static A {runs['lzw'].total_time:.0f}s | "
      f"static B {runs['bzip2'].total_time:.0f}s")
print("(paper: adaptive 160s vs static A 260s — same shape: the adaptive "
      "run tracks whichever static configuration is right for the current "
      "bandwidth)")
