"""Drive the virtual execution environment directly (Figs. 3 and 5/6).

Shows the substrate below the adaptation framework:

1. a sandboxed process under the quantum-feedback CPU limiter, with its
   measured usage trace following a changing share schedule (Fig. 3a);
2. the profiling driver sweeping the visualization app's compression
   configurations over the bandwidth axis, and the resulting performance
   curves with their crossover (Fig. 6a), rendered as an ASCII plot;
3. a sensitivity pass proposing where the database needs more samples.

Run:  python examples/testbed_profiling.py
"""

from repro.experiments import run_fig3a, run_fig6a
from repro.experiments.fig6 import fig6a_database
from repro.profiling import propose_refinements

# -- 1. Sandbox CPU control (Fig. 3a) ---------------------------------------
print("running a tight loop under the quantum CPU limiter")
print("(share schedule: 80% at 0s, 40% at 20s, 60% at 50s)\n")
fig3a = run_fig3a()
print(fig3a.render(width=64, height=12))

# -- 2. Profiling sweep and the compression crossover (Fig. 6a) -------------
print("\nprofiling lzw vs bzip2 over the bandwidth axis in fresh testbeds...")
fig6a = run_fig6a()
print(fig6a.render(width=64, height=12))

# -- 3. Sensitivity analysis -------------------------------------------------
db, _dims, configs = fig6a_database()
proposals = propose_refinements(db, ["transmit_time"], top_k=4)
print("\nsensitivity analysis proposes additional samples at:")
for p in proposals:
    print(f"  {p.config.label()} @ {p.point.label()}  (curvature score {p.score:.3f})")
print("\ntestbed profiling example OK")
