"""Multiple competing tunable applications on shared machines (Sec. 6.2).

Three instances of the visualization application arrive at a shared
client/server pair.  For each arrival the system scheduler consults the
shared performance database, reserves — per the paper — the *minimum*
resources under which a configuration still meets the user preference
(reservation + admission control), and admits the best configuration that
fits the remaining capacity.  Later arrivals degrade gracefully instead of
being refused, and the enforcing sandboxes keep every instance inside its
reservation, so all admitted instances make their deadline concurrently.

Run:  python examples/multi_tenant.py
"""

from repro.apps.visualization import VizCosts, VizWorkload, make_viz_app
from repro.profiling import ProfilingDriver, ResourceDimension, ResourcePoint
from repro.runtime import (
    Objective,
    PlacementError,
    ResourceScheduler,
    SystemScheduler,
    UserPreference,
)
from repro.sandbox import ResourceLimits, Testbed
from repro.tunable import Configuration, MetricRange

DEADLINE = 10.0
BW = 1e6
COSTS = VizCosts(display_cost=2e-4)

print("profiling resolution configurations (shared database)...")
app = make_viz_app()
# Profile with the server pinned to the per-tenant reservation (0.25) so
# measured times include server-side contention.
SERVER_SHARE = 0.25
dims = [
    ResourceDimension("client.cpu", (0.1, 0.15, 0.25, 0.45, 0.7, 0.95), lo=0.01, hi=1.0),
    ResourceDimension("client.network", (BW / 2, BW), lo=1.0),
    ResourceDimension("server.cpu", (SERVER_SHARE, 1.0), lo=0.01, hi=1.0),
]
driver = ProfilingDriver(
    app, dims,
    workload_factory=lambda c, p, s: VizWorkload(n_images=1, costs=COSTS, seed=s),
)
configs = [Configuration({"dR": 320, "c": "lzw", "l": level}) for level in (3, 4)]
plan = [
    ResourcePoint(
        {"client.cpu": s, "client.network": BW, "server.cpu": SERVER_SHARE}
    )
    for s in dims[0].levels
]
db = driver.profile(configs=configs, plan=plan)

for config in configs:
    by_share = {
        p["client.cpu"]: round(db.record_at(config, p).metrics["transmit_time"], 1)
        for p in sorted(db.points_for(config), key=lambda p: p["client.cpu"])
    }
    print(f"  level {config.l}: transmit_time by share = {by_share}")


def minimum_share(config) -> float:
    """Smallest sampled share at which `config` meets the deadline."""
    for point in sorted(db.points_for(config), key=lambda p: p["client.cpu"]):
        if db.record_at(config, point).metrics["transmit_time"] <= DEADLINE:
            return point["client.cpu"]
    return 1.0


def needs(decision):
    return {
        "client": ResourceLimits(cpu_share=minimum_share(decision.config), net_bw=BW),
        "server": ResourceLimits(cpu_share=SERVER_SHARE),
    }


testbed = Testbed(host_specs=app.env.host_specs(), link_specs=app.env.link_specs())
system = SystemScheduler(testbed.hosts, cpu_threshold=0.8)
preference = UserPreference.single(
    Objective("resolution", "maximize"),
    [MetricRange("transmit_time", hi=DEADLINE)],
)

placements = []
for i in range(1, 4):
    name = f"viewer-{i}"
    try:
        placement = system.place(name, ResourceScheduler(db, preference), needs)
    except PlacementError as exc:
        print(f"{name}: REFUSED ({exc})")
        continue
    placements.append((name, placement))
    print(f"{name}: admitted at resolution level {placement.config.l} "
          f"(client CPU reserved {placement.limits()['client'].cpu_share:.0%}; "
          f"{system.free_cpu('client'):.0%} left)")

print("\nrunning all admitted instances concurrently...")
runtimes = []
for name, placement in placements:
    wl = VizWorkload(n_images=3, costs=COSTS)
    rt = app.instantiate(testbed, placement.config, limits=placement.limits(),
                         workload=wl)
    runtimes.append((name, placement, rt))

testbed.run(until=3600)

print()
all_ok = True
for name, placement, rt in runtimes:
    t = rt.qos.get("transmit_time")
    ok = t <= DEADLINE
    all_ok = all_ok and ok
    print(f"{name}: level {placement.config.l} -> {t:.1f}s per image "
          f"[{'ok' if ok else 'DEADLINE MISSED'}]")
assert all_ok, "an admitted instance missed its deadline"
print("\nmulti-tenant example OK")
