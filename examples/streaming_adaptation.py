"""Generality demo: the streaming app adapts through the same framework.

The paper's introduction motivates adaptation with a video stream that
"can respond to network bandwidth reduction by compressing the stream or
selectively dropping frames".  This example builds exactly that on the
framework: profile the streaming app's (fps, quality, codec) space, then
run it against a shrinking pipe and watch the scheduler trade quality for
frame rate.

Run:  python examples/streaming_adaptation.py
"""

from repro.apps import StreamWorkload, make_streaming_app
from repro.profiling import (
    ProfilingDriver,
    ResourceDimension,
    ResourcePoint,
    grid_plan,
)
from repro.runtime import (
    AdaptationController,
    Objective,
    ResourceScheduler,
    UserPreference,
)
from repro.sandbox import ResourceLimits, Testbed
from repro.tunable import MetricRange, Preprocessor

app = make_streaming_app(
    fps_domain=(10, 15), quality_domain=("low", "medium", "high"),
    codec_domain=("none", "lzw"),
)

# -- profile the configuration space over the bandwidth axis -----------------
dims = [
    ResourceDimension(
        "server.network", (150e3, 400e3, 900e3, 2e6, 7e6), lo=1e3
    ),
]


def workload(config, point, seed):
    return StreamWorkload(duration=8.0)


driver = ProfilingDriver(app, dims, workload_factory=workload)
print(f"profiling {len(app.configurations())} configurations x "
      f"{len(dims[0].levels)} bandwidth levels...")
db = driver.profile()
print(f"performance database: {len(db)} records")

# -- preference: hold >=9 fps; show the highest quality that fits ------------
preference = UserPreference.single(
    Objective("quality_bytes", "maximize"),
    [MetricRange("fps_delivered", lo=9.0), MetricRange("frame_lag", hi=0.5)],
)
scheduler = ResourceScheduler(db, preference)
for bw in (7e6, 900e3, 150e3):
    decision = scheduler.select(ResourcePoint({"server.network": bw}))
    c = decision.config
    print(f"at {bw/1e3:6.0f} KB/s -> fps={c.fps} quality={c.quality} codec={c.c} "
          f"(predicted fps {decision.predicted['fps_delivered']:.1f})")

# -- adaptive run against a shrinking pipe -----------------------------------
controller = AdaptationController(
    scheduler,
    monitoring_plan=Preprocessor(app).monitoring_plan(),
    monitor_kwargs={"window": 1.0, "cooldown": 2.0},
)
initial = controller.select_initial(ResourcePoint({"server.network": 7e6}))
print(f"\ninitial configuration: {initial.config.label()}")

testbed = Testbed(host_specs=app.env.host_specs(), link_specs=app.env.link_specs())
wl = StreamWorkload(duration=30.0)
rt = app.instantiate(
    testbed, initial.config,
    limits={"server": ResourceLimits(net_bw=7e6)}, workload=wl,
)
controller.attach(rt)


def shrink():
    yield testbed.sim.timeout(10.0)
    print(f"t={testbed.sim.now:.1f}s: pipe shrinks to 400 KB/s")
    rt.sandboxes["server"].set_limits(ResourceLimits(net_bw=400e3))


testbed.sim.process(shrink())
testbed.run(until=600)

for t, old, new in rt.controls.history:
    print(f"t={t:.1f}s: switched {old.label()} -> {new.label()}")
print(f"final QoS: "
      f"fps={rt.qos.get('fps_delivered'):.1f} "
      f"lag={rt.qos.get('frame_lag'):.3f}s "
      f"quality={rt.qos.get('quality_bytes'):.0f} B/frame")
print("streaming adaptation example OK")
