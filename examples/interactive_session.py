"""Interactive inspection session: step a live run, poke it, replay it.

An :class:`repro.obs.InteractiveContext` constructs any registered
scenario and hands you the simulator one event at a time, with passive
inspectors over every layer (queues, fluid shares, monitor estimates,
controller phase, usage) and deterministic interventions (fault
injection, config pinning, resource perturbation).  Every intervention
is recorded; ``replay`` reproduces the intervened run bit-for-bit from
the script alone.

This walkthrough drives the paper's Figure 5 session:

1. run until the monitor's first constraint violation forces a switch;
2. inspect the monitor estimates and candidate configurations behind it;
3. perturb the client's CPU share and inject a server crash;
4. finish, then replay the recorded script and verify bit-identity.

Run:  python examples/interactive_session.py
Deterministic: same output every run (also exercised by the test suite).
"""

import json

from repro.obs import InteractiveContext, replay

# -- 1. Run to the first adaptation ----------------------------------------

ctx = InteractiveContext("fig5", seed=0)
ctx.run_until(lambda c: len(c.switches()) >= 1)
switch = ctx.switches()[0]
print(
    f"t={ctx.now:.2f}s: first switch {switch['from']} -> {switch['to']} "
    f"(at t={switch['t']:.2f}s)"
)

# -- 2. Inspect the state that motivated it --------------------------------

monitor = ctx.inspect.monitor()
print(f"monitor estimates: {json.dumps(monitor['estimates'], sort_keys=True)}")
controller = ctx.inspect.controller()
print(
    f"controller phase={controller['phase']} "
    f"current={controller['current_config']} "
    f"candidates={len(controller['candidates'])}"
)
for name, share in sorted(ctx.inspect.shares().items()):
    print(f"  share {name}: {share}")

# -- 3. Intervene: starve the client, then crash the server ----------------

ctx.run_until(40.0)
ctx.perturb("client", cpu_share=0.3, net_bw=200e3)
print(f"t={ctx.now:.2f}s: pinched client to 30% CPU / 200 kb/s")

ctx.inject({"events": [
    {"kind": "crash", "host": "server", "at": 55.0, "until": 58.0},
]})
print(f"t={ctx.now:.2f}s: scheduled server crash at t=55s")

# -- 4. Finish, then replay the script bit-for-bit -------------------------

_fig, payload = ctx.finish()
print(f"run finished: total_time={payload['total_time']:.2f}s "
      f"switches={len(payload['switches'])}")

script = ctx.script()
print(f"intervention script: {script}")

twin = replay("fig5", 0, script)
_fig2, payload2 = twin.finish()
same = (
    json.dumps(payload2, sort_keys=True, default=str)
    == json.dumps(payload, sort_keys=True, default=str)
)
assert same, "replayed run must be bit-identical to the intervened original"
print("replay is bit-identical to the original intervened run")
print("interactive session OK")
