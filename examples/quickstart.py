"""Quickstart: declare a tunable application, profile it, let it adapt.

This walks the full pipeline of the framework on a deliberately tiny
application so every moving part is visible:

1. declare control parameters, QoS metrics, environment, tasks (Section 4);
2. profile every configuration in the virtual testbed to build the
   performance database (Section 5);
3. ask the resource scheduler for the right configuration under different
   resource conditions (Section 6);
4. run with run-time adaptation: monitoring detects a CPU-share drop and
   the steering agent switches configurations mid-run (Section 7).

Run:  python examples/quickstart.py
"""

from repro.profiling import (
    PerformanceDatabase,
    ProfilingDriver,
    ResourceDimension,
    ResourcePoint,
)
from repro.runtime import (
    AdaptationController,
    Objective,
    ResourceScheduler,
    UserPreference,
)
from repro.sandbox import ResourceLimits, Testbed
from repro.tunable import (
    ConfigSpace,
    Configuration,
    ControlParameter,
    ExecutionEnv,
    HostComponent,
    MetricRange,
    QoSMetric,
    TaskGraph,
    TaskSpec,
    TunableApp,
)


# -- 1. Declare the tunable application ------------------------------------
# A "renderer" that processes 60 frames; the `detail` knob trades output
# quality against CPU work per frame.

WORK_PER_DETAIL = {1: 1.0, 2: 2.5, 3: 6.0}


def launcher(rt):
    def main():
        sandbox = rt.sandbox("node")
        start = rt.sim.now
        frames = 0
        for _ in range(60):
            # Task boundary: pending reconfigurations land here.
            yield from rt.controls.apply(rt, rt.sim.now)
            yield sandbox.compute(WORK_PER_DETAIL[rt.config.detail])
            frames += 1
            rt.qos.update("detail", float(rt.config.detail), time=rt.sim.now)
        elapsed = rt.sim.now - start
        rt.qos.update("fps", frames / elapsed, time=rt.sim.now)

    return rt.sim.process(main(), name="renderer")


app = TunableApp(
    name="renderer",
    space=ConfigSpace([ControlParameter("detail", (1, 2, 3))]),
    env=ExecutionEnv([HostComponent("node", cpu_speed=100.0)]),
    metrics=[
        QoSMetric("fps", better="higher", unit="frames/s"),
        QoSMetric("detail", better="higher"),
    ],
    tasks=TaskGraph(
        [TaskSpec("render", params=("detail",), resources=("node.cpu",),
                  metrics=("fps", "detail"))]
    ),
    launcher=launcher,
)

# -- 2. Profile every configuration in the virtual testbed ------------------

dims = [ResourceDimension("node.cpu", (0.2, 0.4, 0.6, 0.8, 1.0), lo=0.01, hi=1.0)]
driver = ProfilingDriver(app, dims)
db = driver.profile()
print(f"performance database: {len(db)} records "
      f"({len(db.configurations())} configurations x {len(dims[0].levels)} points)")
for config in sorted(db.configurations(), key=lambda c: c.detail):
    fps_full = db.predict(config, ResourcePoint({"node.cpu": 1.0}), "fps")
    fps_low = db.predict(config, ResourcePoint({"node.cpu": 0.2}), "fps")
    print(f"  detail={config.detail}: fps@100%={fps_full:6.1f}  fps@20%={fps_low:6.1f}")

# -- 3. Ask the scheduler what to run under given conditions ----------------
# Preference: keep fps >= 12, and of the feasible configurations show the
# most detail.

preference = UserPreference.single(
    Objective("detail", "maximize"), [MetricRange("fps", lo=12.0)]
)
scheduler = ResourceScheduler(db, preference)
for share in (1.0, 0.5, 0.2):
    decision = scheduler.select(ResourcePoint({"node.cpu": share}))
    print(f"at {share:4.0%} CPU the scheduler picks detail={decision.config.detail} "
          f"(predicted fps {decision.predicted['fps']:.1f})")

# -- 4. Run with run-time adaptation ----------------------------------------
# Start at full CPU; the testbed drops the share to 20% mid-run.  The
# monitoring agent detects the shortfall and the steering agent downgrades
# the detail level at a frame boundary.

controller = AdaptationController(
    scheduler, monitor_kwargs={"window": 0.5, "cooldown": 1.0}
)
initial = controller.select_initial(ResourcePoint({"node.cpu": 1.0}))
print(f"\ninitial configuration: detail={initial.config.detail}")

testbed = Testbed(host_specs=app.env.host_specs())
rt = app.instantiate(
    testbed, initial.config, limits={"node": ResourceLimits(cpu_share=1.0)}
)
controller.attach(rt)


def vary():
    yield testbed.sim.timeout(1.5)
    print(f"t={testbed.sim.now:.2f}s: CPU share drops to 20%")
    rt.sandboxes["node"].set_limits(ResourceLimits(cpu_share=0.2))


testbed.sim.process(vary())
testbed.run(until=120)

for t, old, new in rt.controls.history:
    print(f"t={t:.2f}s: steering applied detail {old.detail} -> {new.detail}")
print(f"final QoS: {rt.qos.snapshot()}")
assert rt.controls.current.detail < initial.config.detail, "expected a downgrade"
print("quickstart OK")
